"""Exporters: Chrome ``trace_event`` JSON, JSONL streams, flat metrics.

``chrome_trace`` produces the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev — load the written file
directly.  Each span track becomes a thread (tid) under one process, spans
become complete (``"X"``) events with microsecond timestamps, and span
attributes (plus the ``aborted`` flag) land in ``args`` so they show up in
the event-details pane.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer


def _sorted_spans(tracer: SpanTracer) -> List[Span]:
    return sorted(tracer.spans, key=lambda s: (s.start, s.span_id))


def _track_order(spans: List[Span]) -> List[str]:
    seen: Dict[str, None] = {}
    for span in spans:
        if span.track not in seen:
            seen[span.track] = None
    return sorted(seen)


def chrome_trace(
    tracer: SpanTracer,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render a tracer (and optionally a registry) to a trace-event dict.

    Timestamps are simulated seconds scaled to microseconds, which is what
    the Trace Event Format expects; Perfetto then renders simulated seconds
    as wall microseconds, preserving relative phase widths.  Flat metrics,
    when given, ride along under ``otherData`` (Perfetto shows them in the
    trace-info view and scripts can read them back).
    """
    spans = _sorted_spans(tracer)
    tids = {track: tid for tid, track in enumerate(_track_order(spans))}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid, "args": {"name": track}}
        )
    for span in spans:
        args: Dict[str, Any] = dict(span.attrs)
        if span.aborted:
            args["aborted"] = True
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tids[span.track],
                "id": span.span_id,
                "args": args,
            }
        )
    trace: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        trace["otherData"] = {"metrics": metrics.as_flat_dict()}
    return trace


def write_chrome_trace(
    path: str,
    tracer: SpanTracer,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
) -> None:
    """Write ``chrome_trace`` JSON to ``path`` (open it in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics, process_name=process_name), fh, indent=1)


def spans_to_jsonl(tracer: SpanTracer) -> str:
    """One JSON object per line per span, in (start, id) order."""
    lines = []
    for span in _sorted_spans(tracer):
        lines.append(
            json.dumps(
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "cat": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                    "aborted": span.aborted,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def flat_metrics(metrics: MetricsRegistry) -> Dict[str, Any]:
    """Alias for ``registry.as_flat_dict()`` kept at the export surface."""
    return metrics.as_flat_dict()


def write_series_jsonl(path: str, sampler: Any) -> None:
    """Write a sampler's time series as self-describing JSONL.

    Line 1 is a ``meta`` record (bin width, state names, summary scalars);
    then one ``bin`` record per bin (rank-state codes plus the aggregate
    gauges) and one ``phase`` record per exact phase interval.  This is the
    input format of ``tools/dashboard.py``.
    """
    from .sampler import RANK_STATES

    series = sampler.bin_series()
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "type": "meta",
            "states": list(RANK_STATES),
            "bin_s": sampler.bin_s,
            "n_ranks": sampler.n_ranks,
            "end_time": sampler.end_time,
            "summary": sampler.summary(),
        }, sort_keys=True) + "\n")
        for i, edge in enumerate(sampler.edges):
            fh.write(json.dumps({
                "type": "bin",
                "t0": edge - sampler.bin_s,
                "t1": edge,
                "rank_states": list(sampler.rank_states[i]),
                "inbox_depth": list(sampler.inbox_depths[i]),
                "log_bytes": list(sampler.log_bytes[i]),
                "nic_inflight": list(sampler.nic_inflight[i]),
                "nic_busy_frac": series["nic_busy_frac"][i],
                "storage_inflight": sampler.storage_inflight[i],
            }, sort_keys=True) + "\n")
        for rank, phase, start, end in sampler.phase_intervals:
            fh.write(json.dumps({
                "type": "phase",
                "rank": rank,
                "state": phase,
                "start": start,
                "end": end,
            }, sort_keys=True) + "\n")


def write_series_csv(path: str, sampler: Any) -> None:
    """Write the aggregate per-bin series as CSV (one row per bin).

    Columns: bin bounds, per-state rank counts, then the gauge series —
    spreadsheet-friendly; per-rank detail stays in the JSONL export.
    """
    import csv

    from .sampler import RANK_STATES

    series = sampler.bin_series()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["t0", "t1"] + [f"n_{s}" for s in RANK_STATES]
            + ["nic_inflight_total", "nic_busy_frac", "inbox_depth_total",
               "inbox_depth_max", "log_bytes_total", "storage_inflight"])
        for i, edge in enumerate(sampler.edges):
            counts = [0] * len(RANK_STATES)
            for code in sampler.rank_states[i]:
                counts[code] += 1
            writer.writerow(
                [edge - sampler.bin_s, edge] + counts
                + [series["nic_inflight_total"][i],
                   series["nic_busy_frac"][i],
                   series["inbox_depth_total"][i],
                   series["inbox_depth_max"][i],
                   series["log_bytes_total"][i],
                   series["storage_inflight"][i]])
