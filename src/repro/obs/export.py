"""Exporters: Chrome ``trace_event`` JSON, JSONL streams, flat metrics.

``chrome_trace`` produces the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev — load the written file
directly.  Each span track becomes a thread (tid) under one process, spans
become complete (``"X"``) events with microsecond timestamps, and span
attributes (plus the ``aborted`` flag) land in ``args`` so they show up in
the event-details pane.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .spans import Span, SpanTracer


def _sorted_spans(tracer: SpanTracer) -> List[Span]:
    return sorted(tracer.spans, key=lambda s: (s.start, s.span_id))


def _track_order(spans: List[Span]) -> List[str]:
    seen: Dict[str, None] = {}
    for span in spans:
        if span.track not in seen:
            seen[span.track] = None
    return sorted(seen)


def chrome_trace(
    tracer: SpanTracer,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render a tracer (and optionally a registry) to a trace-event dict.

    Timestamps are simulated seconds scaled to microseconds, which is what
    the Trace Event Format expects; Perfetto then renders simulated seconds
    as wall microseconds, preserving relative phase widths.  Flat metrics,
    when given, ride along under ``otherData`` (Perfetto shows them in the
    trace-info view and scripts can read them back).
    """
    spans = _sorted_spans(tracer)
    tids = {track: tid for tid, track in enumerate(_track_order(spans))}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid, "args": {"name": track}}
        )
    for span in spans:
        args: Dict[str, Any] = dict(span.attrs)
        if span.aborted:
            args["aborted"] = True
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tids[span.track],
                "id": span.span_id,
                "args": args,
            }
        )
    trace: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        trace["otherData"] = {"metrics": metrics.as_flat_dict()}
    return trace


def write_chrome_trace(
    path: str,
    tracer: SpanTracer,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
) -> None:
    """Write ``chrome_trace`` JSON to ``path`` (open it in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics, process_name=process_name), fh, indent=1)


def spans_to_jsonl(tracer: SpanTracer) -> str:
    """One JSON object per line per span, in (start, id) order."""
    lines = []
    for span in _sorted_spans(tracer):
        lines.append(
            json.dumps(
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "cat": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                    "aborted": span.aborted,
                    "attrs": span.attrs,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def flat_metrics(metrics: MetricsRegistry) -> Dict[str, Any]:
    """Alias for ``registry.as_flat_dict()`` kept at the export surface."""
    return metrics.as_flat_dict()
