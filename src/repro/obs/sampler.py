"""Passive time-series sampling of simulation state.

``StateSampler`` turns a traced run into per-bin time series — per-rank
state occupancy, NIC inflight/utilization, inbox depths, sender-log
retained bytes, storage-tier inflight copies — **without scheduling a
single event**.  Like ``SpanTracer``, it only *reads* state, so a sampled
run is bit-identical to an unsampled one by construction.

How it works
------------
Simulation state only changes inside event callbacks, so between two
successive event pops the whole world is piecewise-constant.  The kernel
(``Simulator.run_until_event``) checks one bound local per event pop:
when the popped timestamp crosses the sampler's next bin edge it calls
:meth:`observe`, which takes **one** snapshot and stamps it onto every
edge crossed since the previous pop — the snapshot is exact for all of
them because nothing ran in between.

Point samples are accurate to one bin width per contiguous state
interval, which is not tight enough for phases that recur many times
(``K`` checkpoint waves would accumulate up to ``K`` bins of error).  The
runtime therefore *notifies* the sampler at its rare phase-transition
sites (checkpoint enter/exit, kill/rollback, relaunch, finish) via
:meth:`note_phase`; checkpoint / recovery / finished occupancy is
integrated exactly from those intervals, and only the compute /
send-blocked / recv-blocked split of the remainder comes from sampling.

Memory stays bounded: when the number of bins exceeds ``max_bins`` the
sampler drops every other edge and doubles the bin width — a
deterministic function of simulated time, so traced-run parity holds.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.primitives import Timeout

__all__ = [
    "StateSampler",
    "RANK_STATES",
    "SAMPLE_BIN_ENV",
    "sampling_bin_from_env",
]

#: rank-state taxonomy, in stacking order (code == index)
RANK_STATES: Tuple[str, ...] = (
    "compute", "send_blocked", "recv_blocked",
    "checkpoint", "recovery", "finished",
)

_COMPUTE, _SEND, _RECV, _CHECKPOINT, _RECOVERY, _FINISHED = range(6)

#: states integrated exactly from runtime phase notifications
PHASE_STATES: Tuple[str, ...] = ("checkpoint", "recovery", "finished")

#: set to a positive float (seconds of simulated time) to enable sampling
#: in env-configured runs, e.g. ``REPRO_TELEMETRY_SAMPLE_BIN=0.25``
SAMPLE_BIN_ENV = "REPRO_TELEMETRY_SAMPLE_BIN"


def sampling_bin_from_env() -> Optional[float]:
    """Bin width from ``REPRO_TELEMETRY_SAMPLE_BIN``, or None if unset."""
    raw = os.environ.get(SAMPLE_BIN_ENV, "").strip()
    if not raw:
        return None
    try:
        bin_s = float(raw)
    except ValueError:
        return None
    return bin_s if bin_s > 0 else None


class StateSampler:
    """Bucket passive observations of a run into fixed simulated-time bins.

    The sampler is attached to a :class:`~repro.obs.telemetry.Telemetry`
    and bound to the runtime by ``MpiRuntime.attach_telemetry``; the
    simulation kernel drives :meth:`observe` from ``run_until_event``.
    """

    def __init__(self, bin_s: float = 0.25, max_bins: int = 4096) -> None:
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.bin_s = bin_s
        self.max_bins = max_bins
        #: next simulated-time edge a snapshot is owed for (kernel compares
        #: ``time >= sampler.next_edge`` — one local read per event pop)
        self.next_edge = bin_s
        self.rebin_count = 0

        # -- per-edge parallel series (edge e covers the bin [e-bin_s, e)) --
        self.edges: List[float] = []
        self.rank_states: List[bytes] = []          # one state code per rank
        self.inbox_depths: List["array[int]"] = []  # per rank
        self.log_bytes: List["array[int]"] = []     # per rank, retained bytes
        self.nic_inflight: List["array[int]"] = []  # per node, tx+rx transfers
        self.nic_busy_nodes: List[int] = []
        self.storage_inflight: List[int] = []

        # -- exact phase intervals from runtime notifications --
        self._phase_open: Dict[int, Tuple[str, float]] = {}
        self.phase_intervals: List[Tuple[int, str, float, float]] = []

        self._runtime: Optional[Any] = None
        self.end_time: Optional[float] = None

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind_runtime(self, runtime: Any) -> None:
        """Point the sampler at the runtime whose state it reads."""
        self._runtime = runtime

    @property
    def n_ranks(self) -> int:
        return self._runtime.n_ranks if self._runtime is not None else 0

    @property
    def n_bins(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    # observation (called from the kernel hot loop, once per crossed edge)
    # ------------------------------------------------------------------
    def observe(self, time: float) -> None:
        """Record the current snapshot for every bin edge crossed.

        Called by ``Simulator.run_until_event`` right after it advances
        ``sim.now`` to a popped event timestamp and *before* running its
        callbacks: all state is unchanged since the previous event, so the
        one snapshot taken here is exact for every edge in
        ``(prev_event_time, time]``.
        """
        runtime = self._runtime
        if runtime is None:
            self.next_edge = ((time // self.bin_s) + 1.0) * self.bin_s
            return
        snap = self._snapshot()
        edge = self.next_edge
        bin_s = self.bin_s
        (states, depths, logged, nic, busy, storage) = snap
        while edge <= time:
            self.edges.append(edge)
            self.rank_states.append(states)
            self.inbox_depths.append(depths)
            self.log_bytes.append(logged)
            self.nic_inflight.append(nic)
            self.nic_busy_nodes.append(busy)
            self.storage_inflight.append(storage)
            edge += bin_s
        self.next_edge = edge
        if len(self.edges) > self.max_bins:
            self._rebin()

    def _snapshot(self) -> Tuple[bytes, "array[int]", "array[int]",
                                 "array[int]", int, int]:
        runtime = self._runtime
        procs = runtime._rank_processes
        codes = bytearray(runtime.n_ranks)
        depths = array("l")
        logged = array("q")
        for ctx in runtime.contexts:
            rank = ctx.rank
            codes[rank] = self._derive_state(ctx, procs[rank] if rank < len(procs) else None)
            depths.append(len(ctx.inbox))
            logged.append(int(getattr(ctx.protocol, "logged_bytes_total", 0) or 0))
        net = runtime.cluster.network
        tx = net._tx_inflight
        rx = net._rx_inflight
        nic = array("l", [tx[i] + rx[i] for i in range(net.n_nodes)])
        busy = sum(1 for v in nic if v)
        hier = getattr(runtime.cluster, "hierarchy", None)
        storage = 0
        if hier is not None:
            storage = max(0, hier.partner_copies_started
                          - hier.partner_copies_completed
                          - hier.partner_copies_lost)
        return bytes(codes), depths, logged, nic, busy, storage

    @staticmethod
    def _derive_state(ctx: Any, proc: Any) -> int:
        """Classify one rank from runtime flags + what its process waits on.

        Known coarseness: the per-send NIC overhead timeout (~µs scale)
        classifies as compute — it models CPU time spent in the MPI
        library, which is the mpiP convention anyway.
        """
        if ctx.finished:
            return _FINISHED
        if ctx.failed or ctx.in_recovery:
            return _RECOVERY
        if ctx.in_checkpoint:
            return _CHECKPOINT
        if ctx.pending_get is not None or ctx.inbox._waiters:
            return _RECV
        if proc is not None:
            waiting = proc.waiting_on
            if waiting is not None and not isinstance(waiting, Timeout):
                return _SEND
        return _COMPUTE

    def _rebin(self) -> None:
        """Halve resolution: keep every second edge, double the bin width."""
        self.edges = self.edges[1::2]
        self.rank_states = self.rank_states[1::2]
        self.inbox_depths = self.inbox_depths[1::2]
        self.log_bytes = self.log_bytes[1::2]
        self.nic_inflight = self.nic_inflight[1::2]
        self.nic_busy_nodes = self.nic_busy_nodes[1::2]
        self.storage_inflight = self.storage_inflight[1::2]
        self.bin_s *= 2.0
        self.rebin_count += 1
        # re-align the next edge to the coarser grid
        self.next_edge = ((self.next_edge - 1e-12) // self.bin_s + 1.0) * self.bin_s

    # ------------------------------------------------------------------
    # exact phase intervals (runtime notifications, rare transitions)
    # ------------------------------------------------------------------
    def note_phase(self, rank: int, phase: Optional[str], now: float) -> None:
        """Open/close an exact occupancy interval for ``rank``.

        ``phase`` is one of :data:`PHASE_STATES` or None (back to plain
        execution).  Re-noting the currently open phase is a no-op, so
        call sites don't need to dedupe (e.g. kill followed by rollback).
        """
        open_phase = self._phase_open.get(rank)
        if open_phase is not None:
            if open_phase[0] == phase:
                return
            state, start = open_phase
            if state == "checkpoint" and phase == "recovery":
                # A kill/rollback landed mid-checkpoint: the partial wave
                # is wasted work caused by the failure, so book it as
                # recovery cost.  This keeps checkpoint occupancy exactly
                # identical to ``RankStats.checkpoint_time`` (and thus the
                # registry's ``mpi.time.checkpoint`` total), which only
                # counts completed waves.
                state = "recovery"
            if now > start:
                self.phase_intervals.append((rank, state, start, now))
            del self._phase_open[rank]
        if phase is not None:
            self._phase_open[rank] = (phase, now)

    def end_phase(self, rank: int, phase: str, now: float) -> None:
        """Close ``rank``'s open interval only if it is still ``phase``.

        Used by unwind paths (the checkpoint ``finally``) that must not
        clobber a later transition — a kill that lands mid-checkpoint has
        already moved the rank to "recovery" by the time the generator's
        finally block runs.
        """
        open_phase = self._phase_open.get(rank)
        if open_phase is not None and open_phase[0] == phase:
            self.note_phase(rank, None, now)

    def finalize(self, now: float) -> None:
        """Close open phase intervals and stamp the end of the run."""
        for rank, (phase, start) in sorted(self._phase_open.items()):
            if now > start:
                self.phase_intervals.append((rank, phase, start, now))
        self._phase_open.clear()
        if not self.edges and now > 0 and self._runtime is not None:
            # run shorter than one bin: emit a single closing sample so the
            # series (and the dashboard) are never empty
            snap = self._snapshot()
            self.edges.append(now)
            self.rank_states.append(snap[0])
            self.inbox_depths.append(snap[1])
            self.log_bytes.append(snap[2])
            self.nic_inflight.append(snap[3])
            self.nic_busy_nodes.append(snap[4])
            self.storage_inflight.append(snap[5])
        self.end_time = now

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def bin_bounds(self) -> List[Tuple[float, float]]:
        """``[t0, t1)`` per bin (edge ``e`` closes the bin that ends at it)."""
        return [(e - self.bin_s, e) for e in self.edges]

    def rank_state_matrix(self) -> List[bytes]:
        """Per-bin rank-state codes (row = bin, byte ``r`` = rank r's state)."""
        return list(self.rank_states)

    def occupancy_fractions(self) -> Dict[str, List[float]]:
        """Fraction of ranks in each state, per bin (stacked-area input)."""
        n = self.n_ranks or (len(self.rank_states[0]) if self.rank_states else 0)
        out: Dict[str, List[float]] = {s: [] for s in RANK_STATES}
        if not n:
            return out
        for row in self.rank_states:
            counts = [0] * len(RANK_STATES)
            for code in row:
                counts[code] += 1
            for s, c in zip(RANK_STATES, counts):
                out[s].append(c / n)
        return out

    def bin_series(self) -> Dict[str, List[float]]:
        """Aggregate per-bin series keyed by metric name."""
        n_nodes = len(self.nic_inflight[0]) if self.nic_inflight else 0
        return {
            "t": [e - self.bin_s for e in self.edges],
            "nic_inflight_total": [float(sum(a)) for a in self.nic_inflight],
            "nic_busy_frac": [
                (b / n_nodes if n_nodes else 0.0) for b in self.nic_busy_nodes
            ],
            "inbox_depth_total": [float(sum(a)) for a in self.inbox_depths],
            "inbox_depth_max": [float(max(a)) if len(a) else 0.0
                                for a in self.inbox_depths],
            "log_bytes_total": [float(sum(a)) for a in self.log_bytes],
            "storage_inflight": [float(v) for v in self.storage_inflight],
        }

    def phase_seconds(self) -> Dict[int, Dict[str, float]]:
        """Exact per-rank seconds in each notified phase."""
        out: Dict[int, Dict[str, float]] = {}
        for rank, phase, start, end in self.phase_intervals:
            out.setdefault(rank, {})[phase] = (
                out.get(rank, {}).get(phase, 0.0) + (end - start)
            )
        return out

    def state_sample_counts(self) -> Dict[int, Dict[str, int]]:
        """Per-rank count of bins point-sampled in each state."""
        out: Dict[int, Dict[str, int]] = {}
        for row in self.rank_states:
            for rank, code in enumerate(row):
                rank_counts = out.setdefault(rank, {})
                name = RANK_STATES[code]
                rank_counts[name] = rank_counts.get(name, 0) + 1
        return out

    def summary(self) -> Dict[str, float]:
        """Compact scalars for the campaign payload (v8 series summaries)."""
        series = self.bin_series()
        busy = series["nic_busy_frac"]
        return {
            "bin_s": self.bin_s,
            "n_bins": float(self.n_bins),
            "rebin_count": float(self.rebin_count),
            "nic_util_peak": max(busy) if busy else 0.0,
            "nic_util_mean": (sum(busy) / len(busy)) if busy else 0.0,
            "inbox_depth_max": max(series["inbox_depth_max"], default=0.0),
            "log_bytes_peak": max(series["log_bytes_total"], default=0.0),
            "storage_inflight_peak": max(series["storage_inflight"], default=0.0),
        }
