"""Unified telemetry: simulated-time spans, metrics registry, exporters.

Public API
----------
* :class:`Telemetry` — the handle to attach to a run; bundles a
  :class:`SpanTracer` and a :class:`MetricsRegistry` behind one clock.
* :class:`SpanTracer` / :class:`Span` — nested, attributed time intervals
  (simulated or wall clock); ``abort_open`` closes interrupted spans with
  ``aborted=True``.
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — named, tagged instruments superseding the ad-hoc
  per-subsystem counters.
* Exporters — :func:`chrome_trace` / :func:`write_chrome_trace` (open in
  chrome://tracing or Perfetto), :func:`spans_to_jsonl`,
  :func:`flat_metrics`.
* Harvest — :func:`harvest_scenario` / :func:`phase_times` turn a finished
  run's legacy accounting into registry series and payload phase times.
* Sampling — :class:`StateSampler` buckets passive observations into fixed
  simulated-time bins (rank-state occupancy, NIC utilization, inbox depths,
  sender-log bytes, storage inflight) without scheduling events;
  :func:`utilization_breakdown` rolls the series into per-rank seconds that
  reconcile with the registry's phase times; :func:`write_series_jsonl` /
  :func:`write_series_csv` export the series for ``tools/dashboard.py``.

Telemetry is off by default and costs nothing on the simulator hot loops;
set ``REPRO_TELEMETRY=1`` (or pass ``telemetry=`` to ``run_scenario``) to
record spans.  See the README "Observability" section.
"""

from .export import (
    chrome_trace,
    flat_metrics,
    spans_to_jsonl,
    write_chrome_trace,
    write_series_csv,
    write_series_jsonl,
)
from .harvest import (
    harvest_app,
    harvest_coordinator,
    harvest_restart,
    harvest_scenario,
    phase_times,
)
from .metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .attribution import (
    reconcile_with_registry,
    utilization_breakdown,
    utilization_table,
)
from .sampler import (
    RANK_STATES,
    SAMPLE_BIN_ENV,
    StateSampler,
    sampling_bin_from_env,
)
from .spans import NullTracer, Span, SpanTracer
from .telemetry import (
    TELEMETRY_DIR_ENV,
    TELEMETRY_ENV,
    Telemetry,
    tracing_enabled_from_env,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NullTracer",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TELEMETRY_ENV",
    "TELEMETRY_DIR_ENV",
    "tracing_enabled_from_env",
    "StateSampler",
    "RANK_STATES",
    "SAMPLE_BIN_ENV",
    "sampling_bin_from_env",
    "utilization_breakdown",
    "utilization_table",
    "reconcile_with_registry",
    "chrome_trace",
    "write_chrome_trace",
    "spans_to_jsonl",
    "flat_metrics",
    "write_series_jsonl",
    "write_series_csv",
    "harvest_app",
    "harvest_coordinator",
    "harvest_restart",
    "harvest_scenario",
    "phase_times",
]
