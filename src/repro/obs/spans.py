"""Simulated-time span tracing.

A :class:`Span` is a named, attributed time interval on a *track* (one
timeline lane — typically a rank, ``"recovery"``, or ``"storage"``).  Spans
nest: beginning a span while another is open on the same track makes the new
span a child of the open one, and attributes set on ``begin``/``end`` ride
along to the exporters.

The tracer is **passive**: it only reads the clock callable it was given
(``sim.now`` in simulation, ``time.time`` in the campaign executor) and never
schedules events, yields, or otherwise touches the simulation calendar.  That
is what makes telemetry-on runs bit-identical to telemetry-off runs — spans
observe timestamps the simulation was going to produce anyway.

Two recording styles are supported:

* **live** — ``begin()`` / ``end()`` (or the ``span()`` context manager)
  around code as it executes; interrupted work is swept up by
  ``abort_open()``, which closes every open span on a track with
  ``aborted=True`` (the rank-kill / rollback path), and
* **retroactive** — ``add(name, start, end)`` for intervals whose boundaries
  are only known after the fact (checkpoint stage breakdowns, recovery
  reports, completed L2 partner copies).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One named time interval on a track.

    ``end`` is ``None`` while the span is open.  ``aborted`` marks spans that
    were closed by ``abort_open()`` (the enclosed work was interrupted — a
    rank kill, a group rollback, a lost L2 copy) rather than completing.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "track",
        "start",
        "end",
        "attrs",
        "aborted",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        track: str,
        start: float,
        category: str = "",
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        self.aborted = False

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else ("aborted" if self.aborted else "closed")
        return "Span(%r, track=%r, start=%.6f, %s)" % (self.name, self.track, self.start, state)


class SpanTracer:
    """Records nested spans against a caller-supplied clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  In simulation
        this is ``lambda: sim.now``; the campaign executor passes
        ``time.time`` for wall-clock task spans.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._open: Dict[str, List[Span]] = {}
        self._next_id = 1

    # -- live recording ---------------------------------------------------

    def begin(
        self,
        name: str,
        track: str = "main",
        category: str = "",
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span on ``track``; nests under the track's open span."""
        stack = self._open.setdefault(track, [])
        parent = stack[-1].span_id if stack else None
        span = Span(
            self._next_id,
            name,
            track,
            self.clock() if start is None else start,
            category=category,
            parent_id=parent,
            attrs=attrs or None,
        )
        self._next_id += 1
        stack.append(span)
        return span

    def end(self, span: Span, end: Optional[float] = None, **attrs: Any) -> Span:
        """Close ``span`` (idempotent) and pop it from its track's stack."""
        if span.end is None:
            span.end = self.clock() if end is None else end
            if attrs:
                span.attrs.update(attrs)
            stack = self._open.get(span.track)
            if stack and span in stack:
                stack.remove(span)
            self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "main",
        category: str = "",
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager: ``with tracer.span("claim", track="worker"):``."""
        record = self.begin(name, track=track, category=category, **attrs)
        try:
            yield record
        finally:
            self.end(record)

    def abort_open(self, track: str, at: Optional[float] = None, **attrs: Any) -> List[Span]:
        """Close every open span on ``track`` with ``aborted=True``.

        Called when the work a track was executing is interrupted from the
        outside — a rank kill or a group rollback — so the trace shows the
        cut-short interval instead of a dangling open span.  Spans close
        innermost-first at ``at`` (default: now).
        """
        stack = self._open.get(track)
        closed: List[Span] = []
        when = self.clock() if at is None else at
        while stack:
            span = stack[-1]
            span.aborted = True
            self.end(span, end=when, **attrs)
            closed.append(span)
        return closed

    def open_count(self, track: Optional[str] = None) -> int:
        """Number of still-open spans (on one track, or overall)."""
        if track is not None:
            return len(self._open.get(track, ()))
        return sum(len(stack) for stack in self._open.values())

    # -- retroactive recording --------------------------------------------

    def add(
        self,
        name: str,
        start: float,
        end: float,
        track: str = "main",
        category: str = "",
        parent: Optional[Span] = None,
        aborted: bool = False,
        **attrs: Any,
    ) -> Span:
        """Record an interval whose boundaries are already known.

        Retroactive spans never touch the open-span stacks, so overlapping
        intervals (concurrent L2 partner copies, per-rank recovery legs) can
        share a track without corrupting live nesting.
        """
        span = Span(
            self._next_id,
            name,
            track,
            start,
            category=category,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs or None,
        )
        self._next_id += 1
        span.end = end
        span.aborted = aborted
        self.spans.append(span)
        return span


class NullTracer:
    """No-op drop-in for :class:`SpanTracer` when tracing is disabled.

    Mirrors the ``attach_failure_source`` gating idiom: call sites that hold
    a telemetry handle can call instruments unconditionally; a null tracer
    turns every call into an attribute lookup and an immediate return.
    """

    __slots__ = ()

    spans: List[Span] = []

    def begin(self, name, track="main", category="", start=None, **attrs):
        return _NULL_SPAN

    def end(self, span, end=None, **attrs):
        return _NULL_SPAN

    @contextmanager
    def span(self, name, track="main", category="", **attrs):
        yield _NULL_SPAN

    def abort_open(self, track, at=None, **attrs):
        return []

    def open_count(self, track=None):
        return 0

    def add(self, name, start, end, track="main", category="", parent=None, aborted=False, **attrs):
        return _NULL_SPAN


#: shared inert span handed out by :class:`NullTracer`
_NULL_SPAN = Span(0, "", "", 0.0)
_NULL_SPAN.end = 0.0
