"""The telemetry facade: one handle bundling a tracer and a registry.

Enablement follows the ``attach_failure_source`` pattern used throughout the
runtime: telemetry is **off by default**, hot loops never consult it, and the
only way to turn it on is to construct a :class:`Telemetry` and attach it
(``MpiRuntime.attach_telemetry`` / ``Telemetry.for_simulator``), or to export
``REPRO_TELEMETRY=1`` so ``run_scenario`` builds one for you.

Two flavours:

* ``Telemetry.for_simulator(sim)`` — spans timestamped with ``sim.now``
  (simulated seconds).  Attached to ``sim.telemetry`` so subsystems that
  only hold a simulator handle (the storage hierarchy) can find it.
* ``Telemetry(clock=time.time)`` — wall-clock spans, used by the campaign
  executor for task claim→run intervals.

A metrics registry is always present (it is a passive accumulator and is
also the campaign payload's phase-time source of truth); the span tracer can
be disabled independently with ``trace=False`` for registry-only runs.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from .metrics import MetricsRegistry
from .spans import NullTracer, SpanTracer

#: set to ``1``/``true``/``on`` to make ``run_scenario`` trace every run
TELEMETRY_ENV = "REPRO_TELEMETRY"
#: optional directory where campaign workers drop their task traces
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"

_NULL_TRACER = NullTracer()


def tracing_enabled_from_env() -> bool:
    """True when ``REPRO_TELEMETRY`` requests tracing (off by default)."""
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in ("1", "true", "on", "yes")


class Telemetry:
    """Bundle of one :class:`SpanTracer` and one :class:`MetricsRegistry`.

    Attributes
    ----------
    tracer:
        A :class:`SpanTracer` when ``tracing`` is True, else a shared
        :class:`NullTracer` so call sites never need a None check.
    metrics:
        The :class:`MetricsRegistry` for this run (always live).
    tracing:
        Whether span recording is enabled.  Integration sites gate span
        emission on this (or on holding a telemetry handle at all).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, trace: bool = True,
                 sample_bin_s: Optional[float] = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.metrics = MetricsRegistry()
        self.tracing = bool(trace)
        self.tracer: Any = SpanTracer(self.clock) if self.tracing else _NULL_TRACER
        #: optional passive time-series sampler (``sample_bin_s`` simulated
        #: seconds per bin); bound to the runtime by ``attach_telemetry``
        self.sampler: Optional[Any] = None
        if sample_bin_s is not None:
            self.attach_sampler(sample_bin_s)

    def attach_sampler(self, bin_s: float, max_bins: int = 4096) -> "Telemetry":
        """Enable continuous state sampling at ``bin_s`` simulated seconds."""
        from .sampler import StateSampler

        self.sampler = StateSampler(bin_s=bin_s, max_bins=max_bins)
        return self

    @classmethod
    def for_simulator(cls, sim, trace: bool = True) -> "Telemetry":
        """Build a simulated-time telemetry handle and attach it to ``sim``."""
        telemetry = cls(trace=trace)
        telemetry.bind_simulator(sim)
        return telemetry

    def bind_simulator(self, sim) -> "Telemetry":
        """(Re)point the clock at ``sim.now`` and set ``sim.telemetry``.

        Lets a caller construct the handle before the simulator exists
        (``run_scenario(config, telemetry=...)``) and bind late.
        """
        self.clock = lambda: sim.now
        if self.tracing:
            self.tracer.clock = self.clock
        sim.telemetry = self
        return self
