"""One function per table/figure of the paper's evaluation section.

Every function takes an :class:`~repro.experiments.config.ExperimentProfile`
(``FULL`` reproduces the paper's scales, ``QUICK`` is a reduced version used
by the integration tests) and returns a dictionary containing
:class:`~repro.analysis.reporting.Series` / :class:`Table` objects with the
same rows/series the paper reports.  The benchmark harness prints them.

Runs are shared between figures that the paper derives from the same
experiment (e.g. Figures 5–9 all come from the HPL one-shot-checkpoint
sweep) and executed through the :mod:`repro.campaign` engine: results are
keyed by a content-hash of the scenario config in a (possibly persistent,
see ``REPRO_CAMPAIGN_DB``) store, so repeated figure generation re-runs
nothing and a cold sweep can use several worker processes
(``REPRO_CAMPAIGN_WORKERS``, or :func:`repro.campaign.set_default_campaign`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.analysis.reporting import Series, Table, series_table
from repro.ckpt.base import STAGES
from repro.ckpt.scheduler import CheckpointSchedule, one_shot, periodic
from repro.cluster.topology import GIDEON_300
from repro.core.formation import form_groups, grouping_quality
from repro.core.groups import GroupSet
from repro.experiments.config import ExperimentProfile, FULL, ScenarioConfig
from repro.experiments.runner import ScenarioResult, obtain_trace

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.campaign.grid import ParameterGrid
    from repro.campaign.results import StoredResult

#: grouping methods compared in the HPL / CG experiments
HPL_METHODS: Tuple[str, ...] = ("GP", "GP1", "GP4", "NORM")
SP_METHODS: Tuple[str, ...] = ("GP", "GP1", "NORM")

#: the HPL trace analysis yields groups of size P (the process-column size),
#: so the formation bound is set to the grid height, as in Table 1
HPL_MAX_GROUP_SIZE = 8

#: figure code accepts live and stored results interchangeably
SweepResult = Union[ScenarioResult, "StoredResult"]


# ----------------------------------------------------------------------- shared sweeps
def _run_all(configs: Sequence[ScenarioConfig]) -> List["StoredResult"]:
    """Run configs through the default campaign (parallel, cached, resumable)."""
    from repro.campaign.executor import get_default_campaign

    return get_default_campaign().run(configs)


def _grid(**kwargs) -> "ParameterGrid":
    from repro.campaign.grid import ParameterGrid

    return ParameterGrid(**kwargs)


def _by_method_and_scale(
    results: Sequence["StoredResult"],
) -> Dict[Tuple[str, int], "StoredResult"]:
    return {(r.config.method, r.config.n_ranks): r for r in results}


def _hpl_config(profile: ExperimentProfile, n: int, method: str, schedule) -> ScenarioConfig:
    return ScenarioConfig(
        workload="hpl",
        n_ranks=n,
        method=method,
        schedule=schedule,
        cluster=GIDEON_300,
        workload_options=dict(profile.hpl_options),
        max_group_size=HPL_MAX_GROUP_SIZE,
        seed=7,
    )


def hpl_grid(profile: ExperimentProfile = FULL) -> "ParameterGrid":
    """The HPL one-shot-checkpoint grid (method × scale) as a declarative object.

    The base is derived from :func:`_hpl_config` so the grid's scenarios and
    figure1's individually built ones share content-hash keys (and therefore
    store rows) by construction.
    """
    template = _hpl_config(profile, profile.hpl_scales[0], HPL_METHODS[0],
                           one_shot(profile.checkpoint_at_s))
    base = {field: getattr(template, field)
            for field in ("workload", "schedule", "cluster", "workload_options",
                          "max_group_size", "seed")}
    return _grid(axes={"n_ranks": profile.hpl_scales, "method": HPL_METHODS}, base=base)


def hpl_sweep(profile: ExperimentProfile = FULL) -> Dict[Tuple[str, int], SweepResult]:
    """The HPL one-shot-checkpoint sweep shared by Figures 5, 6, 7, 8 and 9."""
    return _by_method_and_scale(_run_all(hpl_grid(profile).expand()))


def cg_grid(profile: ExperimentProfile = FULL) -> "ParameterGrid":
    """The NPB CG one-shot-checkpoint grid behind Figure 11."""
    return _grid(
        axes={"n_ranks": profile.cg_scales, "method": HPL_METHODS},
        base=dict(
            workload="cg",
            schedule=one_shot(profile.checkpoint_at_s),
            workload_options=dict(profile.cg_options),
            seed=7,
        ),
    )


def cg_sweep(profile: ExperimentProfile = FULL) -> Dict[Tuple[str, int], SweepResult]:
    """The NPB CG one-shot-checkpoint sweep behind Figure 11."""
    return _by_method_and_scale(_run_all(cg_grid(profile).expand()))


def sp_grid(profile: ExperimentProfile = FULL) -> "ParameterGrid":
    """The NPB SP one-shot-checkpoint grid behind Figure 12 (GP4 is not applicable)."""
    return _grid(
        axes={"n_ranks": profile.sp_scales, "method": SP_METHODS},
        base=dict(
            workload="sp",
            schedule=one_shot(profile.checkpoint_at_s),
            workload_options=dict(profile.sp_options),
            seed=7,
        ),
    )


def sp_sweep(profile: ExperimentProfile = FULL) -> Dict[Tuple[str, int], SweepResult]:
    """The NPB SP one-shot-checkpoint sweep behind Figure 12 (GP4 is not applicable)."""
    return _by_method_and_scale(_run_all(sp_grid(profile).expand()))


def remote_storage_sweep(
    profile: ExperimentProfile = FULL, n_checkpoints: int = 3
) -> Dict[Tuple[str, int], SweepResult]:
    """The CG remote-storage comparison behind Figures 13 and 14 (GP vs VCL).

    The paper triggers MPICH-VCL every 120 s and then forces GP to take the
    *same number* of checkpoints; with the simulator's shorter executions the
    fair equivalent is a fixed number of evenly spaced checkpoints per run.
    """
    cluster = GIDEON_300.with_remote_checkpointing(4)
    # Estimate the no-checkpoint execution time per scale to place the requests.
    probes = _run_all([
        ScenarioConfig(
            workload="cg",
            n_ranks=n,
            method="NORM",
            schedule=None,
            cluster=cluster,
            workload_options=dict(profile.cg_options),
            do_restart=False,
            seed=7,
        )
        for n in profile.cg_scales
    ])
    configs = []
    for n, probe in zip(profile.cg_scales, probes):
        horizon = probe.makespan
        times = tuple(horizon * (i + 1) / (n_checkpoints + 1) for i in range(n_checkpoints))
        schedule = CheckpointSchedule(times=times)
        for method in ("GP", "VCL"):
            configs.append(
                ScenarioConfig(
                    workload="cg",
                    n_ranks=n,
                    method=method,
                    schedule=schedule,
                    cluster=cluster,
                    workload_options=dict(profile.cg_options),
                    do_restart=False,
                    seed=7,
                )
            )
    return _by_method_and_scale(_run_all(configs))


def clear_sweep_cache() -> None:
    """Forget cached sweeps (mainly for tests).

    Drops the auto-created (in-memory) default campaign.  An explicitly
    installed campaign — e.g. the benchmark harness's persistent store — is
    left untouched: its database is an authoritative result archive, not a
    throwaway memo.  The same applies to a store selected via
    ``REPRO_CAMPAIGN_DB``: the handle is dropped but the file (and its
    ``done`` rows) persists — delete the file to force cold re-runs after
    changing simulator internals.
    """
    from repro.campaign.executor import reset_default_campaign

    reset_default_campaign(only_auto=True)


# ------------------------------------------------------------------------------ Figure 1
def figure1(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 1: aggregate coordination time of one global checkpoint (HPL + LAM/MPI).

    The paper's claim: the summed coordination time grows steadily with the
    number of processes and occasionally spikes because of unexpected delays.
    """
    series = Series(name="NORM aggregate coordination time (s)")
    schedule = one_shot(profile.checkpoint_at_s)
    results = _run_all([_hpl_config(profile, n, "NORM", schedule)
                        for n in profile.coordination_scales])
    for n, result in zip(profile.coordination_scales, results):
        series.append(n, result.aggregate_coordination_time)
    table = series_table("Figure 1: checkpoint coordination time (HPL, global coordinated)",
                         [series], x_label="processes")
    return {"series": [series], "table": table}


# ------------------------------------------------------------------------------ Figure 2
def figure2(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 2: MPICH-VCL blocking behaviour on CG at two scales.

    The paper shows MPI trace diagrams with 30-second checkpoints: at 32
    processes messages still flow during a checkpoint, at 128 processes the
    light-grey "gaps" span nearly the whole checkpoint.  The quantified
    equivalent is the *gap fraction*: the fraction of checkpoint-window time
    with no message deliveries anywhere.
    """
    scales = (profile.cg_scales[0], profile.cg_scales[-1])
    cluster = GIDEON_300.with_remote_checkpointing(4)
    table = Table(
        title="Figure 2: VCL checkpoint blocking on CG (checkpoints every 30 s)",
        columns=["processes", "execution time (s)", "checkpoints", "mean ckpt (s)", "gap fraction"],
    )
    gap_series = Series(name="VCL gap fraction")
    results = _run_all([
        ScenarioConfig(
            workload="cg",
            n_ranks=n,
            method="VCL",
            schedule=periodic(profile.vcl_interval_s),
            cluster=cluster,
            workload_options=dict(profile.cg_options),
            do_restart=False,
            seed=7,
        )
        for n in scales
    ])
    for n, result in zip(scales, results):
        gap = result.gap_fraction
        gap_series.append(n, gap)
        table.add_row(n, result.makespan, result.checkpoints_completed,
                      result.mean_checkpoint_duration, gap)
    return {"series": [gap_series], "table": table}


# ------------------------------------------------------------------------------ Figure 3
def figure3(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 3: conceptual comparison — coordination scope vs logged channels.

    For a reference HPL trace, compares the three schemes along the two axes
    the figure illustrates: how many processes must coordinate a checkpoint,
    and how much traffic must be logged.
    """
    n = profile.hpl_scales[min(1, len(profile.hpl_scales) - 1)]
    trace = obtain_trace("hpl", n, GIDEON_300, dict(profile.hpl_options))
    formation = form_groups(trace, max_group_size=HPL_MAX_GROUP_SIZE, n_ranks=n)
    schemes = {
        "coordinated (NORM)": GroupSet.single(n),
        "group-based (GP)": formation.groupset,
        "message logging (GP1)": GroupSet.singletons(n),
    }
    table = Table(
        title=f"Figure 3: protocol comparison on an HPL trace ({n} processes)",
        columns=["scheme", "coordination scope", "logged messages", "logged bytes fraction"],
    )
    total_bytes = float(trace.total_bytes) or 1.0
    for name, groupset in schemes.items():
        quality = grouping_quality(groupset, trace)
        table.add_row(
            name,
            groupset.max_group_size,
            int(quality["logged_messages"]),
            quality["logged_bytes"] / total_bytes,
        )
    return {"table": table}


# ------------------------------------------------------------------------------- Table 1
def table1(profile: ExperimentProfile = FULL, n_ranks: int = 32) -> Dict[str, object]:
    """Table 1: trace-assisted group formation for HPL (P×Q = 8×4 at 32 processes)."""
    trace = obtain_trace("hpl", n_ranks, GIDEON_300, dict(profile.hpl_options))
    formation = form_groups(trace, max_group_size=HPL_MAX_GROUP_SIZE, n_ranks=n_ranks)
    table = Table(
        title=f"Table 1: group formation for HPL, {n_ranks} processes",
        columns=["group #", "process ranks"],
    )
    for idx, group in enumerate(sorted(formation.groupset.all_groups()), start=1):
        table.add_row(idx, ", ".join(str(r) for r in group))
    return {"table": table, "groupset": formation.groupset, "formation": formation}


# ------------------------------------------------------------------------------ Figure 5
def figure5(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 5: HPL execution time with one checkpoint at t = 60 s (and Δ vs NORM)."""
    sweep = hpl_sweep(profile)
    series = [Series(name=m) for m in HPL_METHODS]
    diff_series = [Series(name=f"{m} - NORM") for m in HPL_METHODS]
    for n in profile.hpl_scales:
        norm_time = sweep[("NORM", n)].makespan
        for s, d, method in zip(series, diff_series, HPL_METHODS):
            t = sweep[(method, n)].makespan
            s.append(n, t)
            d.append(n, t - norm_time)
    table = series_table("Figure 5a: HPL execution time with one checkpoint (s)",
                         series, x_label="processes")
    diff_table = series_table("Figure 5b: difference from NORM (s, lower is better)",
                              diff_series, x_label="processes")
    return {"series": series, "diff_series": diff_series, "table": table, "diff_table": diff_table}


# ------------------------------------------------------------------------------ Figure 6
def figure6(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 6: summed checkpoint (a) and restart (b) times for HPL."""
    sweep = hpl_sweep(profile)
    ckpt_series = [Series(name=m) for m in HPL_METHODS]
    restart_series = [Series(name=m) for m in HPL_METHODS]
    for n in profile.hpl_scales:
        for cs, rs, method in zip(ckpt_series, restart_series, HPL_METHODS):
            cs.append(n, sweep[(method, n)].aggregate_checkpoint_time)
            rs.append(n, sweep[(method, n)].aggregate_restart_time)
    return {
        "checkpoint_series": ckpt_series,
        "restart_series": restart_series,
        "table": series_table("Figure 6a: aggregate checkpoint time (s)", ckpt_series, "processes"),
        "restart_table": series_table("Figure 6b: aggregate restart time (s)", restart_series, "processes"),
    }


# ------------------------------------------------------------------------------ Figure 7
def figure7(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 7: total amount of data to resend during a restart (KB)."""
    sweep = hpl_sweep(profile)
    methods = ("GP", "GP1", "GP4")
    series = [Series(name=m) for m in methods]
    for n in profile.hpl_scales:
        for s, method in zip(series, methods):
            s.append(n, sweep[(method, n)].resend_bytes / 1024.0)
    return {"series": series,
            "table": series_table("Figure 7: amount of data to resend (KB)", series, "processes")}


# ------------------------------------------------------------------------------ Figure 8
def figure8(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 8: number of resend operations needed to complete a restart."""
    sweep = hpl_sweep(profile)
    methods = ("GP", "GP1", "GP4")
    series = [Series(name=m) for m in methods]
    for n in profile.hpl_scales:
        for s, method in zip(series, methods):
            s.append(n, sweep[(method, n)].resend_operations)
    return {"series": series,
            "table": series_table("Figure 8: number of resend operations", series, "processes")}


# ------------------------------------------------------------------------------ Figure 9
def figure9(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 9: average checkpoint time breakdown by stage at the smallest and largest scales."""
    sweep = hpl_sweep(profile)
    scales = (profile.hpl_scales[0], profile.hpl_scales[-1])
    table = Table(
        title="Figure 9: checkpoint time breakdown (average per process, s)",
        columns=["processes", "method"] + list(STAGES) + ["total"],
    )
    for n in scales:
        for method in HPL_METHODS:
            # stage means come from the metrics registry (payload v6
            # "phase_times" harvested by the telemetry layer) — see
            # StoredResult.breakdown / ScenarioResult.breakdown
            breakdown = sweep[(method, n)].breakdown()
            row = [n, method] + breakdown.as_row() + [breakdown.total]
            table.add_row(*row)
    return {"table": table}


# ----------------------------------------------------------------------------- Figure 10
def figure10(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    problem_size: Optional[int] = None,
) -> Dict[str, object]:
    """Figure 10: effect of multiple checkpoints at fixed intervals (GP vs NORM).

    The paper runs HPL with N = 56000 on 128 processes and checkpoints every
    0 / 60 / 120 / 180 / 300 seconds.  GP pays a logging overhead when no
    checkpoint is taken, catches up as checkpoints are added, and wins (while
    completing more checkpoints) at the shorter intervals.
    """
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    options = dict(profile.hpl_options)
    if problem_size is not None:
        options["problem_size"] = problem_size
    elif profile.name == "full":
        options["problem_size"] = 56000
    exec_series = {m: Series(name=f"{m} time") for m in ("GP", "NORM")}
    count_series = {m: Series(name=f"{m} #CKPT") for m in ("GP", "NORM")}
    schedules = {interval: None if interval == 0 else periodic(interval)
                 for interval in profile.interval_sweep_s}
    grid = _grid(
        axes={
            "schedule": tuple(schedules.values()),
            "method": ("GP", "NORM"),
        },
        base=dict(
            workload="hpl",
            n_ranks=n,
            workload_options=options,
            max_group_size=HPL_MAX_GROUP_SIZE,
            do_restart=False,
            seed=7,
        ),
    )
    by_point = {(r.config.schedule, r.config.method): r for r in _run_all(grid.expand())}
    for interval in profile.interval_sweep_s:
        for method in ("GP", "NORM"):
            result = by_point[(schedules[interval], method)]
            exec_series[method].append(interval, result.makespan)
            count_series[method].append(interval, result.checkpoints_completed)
    all_series = list(exec_series.values()) + list(count_series.values())
    return {
        "series": all_series,
        "table": series_table(
            f"Figure 10: effect of multiple checkpoints (HPL N={options.get('problem_size', 20000)}, {n} processes)",
            all_series,
            x_label="interval (s)",
        ),
    }


# ----------------------------------------------------------------------------- Figure 11
def figure11(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 11: CG class C — summed checkpoint and restart times."""
    sweep = cg_sweep(profile)
    ckpt_series = [Series(name=m) for m in HPL_METHODS]
    restart_series = [Series(name=m) for m in HPL_METHODS]
    for n in profile.cg_scales:
        for cs, rs, method in zip(ckpt_series, restart_series, HPL_METHODS):
            cs.append(n, sweep[(method, n)].aggregate_checkpoint_time)
            rs.append(n, sweep[(method, n)].aggregate_restart_time)
    return {
        "checkpoint_series": ckpt_series,
        "restart_series": restart_series,
        "table": series_table("Figure 11a: CG aggregate checkpoint time (s)", ckpt_series, "processes"),
        "restart_table": series_table("Figure 11b: CG aggregate restart time (s)", restart_series, "processes"),
    }


# ----------------------------------------------------------------------------- Figure 12
def figure12(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 12: SP class C — summed checkpoint and restart times (GP, GP1, NORM)."""
    sweep = sp_sweep(profile)
    ckpt_series = [Series(name=m) for m in SP_METHODS]
    restart_series = [Series(name=m) for m in SP_METHODS]
    for n in profile.sp_scales:
        for cs, rs, method in zip(ckpt_series, restart_series, SP_METHODS):
            cs.append(n, sweep[(method, n)].aggregate_checkpoint_time)
            rs.append(n, sweep[(method, n)].aggregate_restart_time)
    return {
        "checkpoint_series": ckpt_series,
        "restart_series": restart_series,
        "table": series_table("Figure 12a: SP aggregate checkpoint time (s)", ckpt_series, "processes"),
        "restart_table": series_table("Figure 12b: SP aggregate restart time (s)", restart_series, "processes"),
    }


# ----------------------------------------------------------------------------- Figure 13
def figure13(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 13: CG with remote checkpoint storage — execution time and checkpoint count."""
    sweep = remote_storage_sweep(profile)
    exec_series = {m: Series(name=f"{m} time") for m in ("GP", "VCL")}
    count_series = {m: Series(name=f"{m} #CKPT") for m in ("GP", "VCL")}
    for n in profile.cg_scales:
        for method in ("GP", "VCL"):
            result = sweep[(method, n)]
            exec_series[method].append(n, result.makespan)
            count_series[method].append(n, result.checkpoints_completed)
    all_series = list(exec_series.values()) + list(count_series.values())
    return {
        "series": all_series,
        "table": series_table("Figure 13: CG on remote checkpoint storage (GP vs MPICH-VCL)",
                              all_series, x_label="processes"),
    }


# ----------------------------------------------------------------------------- Figure 14
def figure14(profile: ExperimentProfile = FULL) -> Dict[str, object]:
    """Figure 14: average time per checkpoint, GP vs MPICH-VCL, on remote storage."""
    sweep = remote_storage_sweep(profile)
    series = [Series(name="GP"), Series(name="VCL")]
    for n in profile.cg_scales:
        series[0].append(n, sweep[("GP", n)].mean_checkpoint_duration)
        series[1].append(n, sweep[("VCL", n)].mean_checkpoint_duration)
    return {"series": series,
            "table": series_table("Figure 14: average time per checkpoint (s)", series, "processes")}


#: registry used by the benchmark harness and the reproduce-everything example
ALL_EXPERIMENTS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "table1": table1,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
}
