"""Determinism-parity scenario set and metric extraction.

The kernel fast-path refactor must not change any *simulated* quantity: a
scenario run before and after the refactor (and with the fast path forced off)
has to produce bit-identical metrics.  This module pins down

* :func:`quick_parity_configs` — a representative set of QUICK-profile
  scenarios covering every workload family, both storage layouts, one-shot
  and periodic schedules, and all protocol families,
* :func:`parity_metrics` — the exact set of simulated metrics compared,
* :func:`scenario_label` — a stable, human-readable key per scenario.

``tools/make_parity_golden.py`` dumps the metrics of the current kernel to
``tests/data/quick_parity_golden.json``; ``tests/test_determinism_parity.py``
asserts the live kernel still reproduces that file exactly, and that the
closed-form network fast path matches the full coroutine model event-for-event.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ckpt.scheduler import one_shot, periodic
from repro.cluster.topology import GIDEON_300
from repro.experiments.config import QUICK, ScenarioConfig


def quick_parity_configs() -> List[ScenarioConfig]:
    """The QUICK scenarios whose simulated metrics are frozen by the golden file."""
    q = QUICK
    remote = GIDEON_300.with_remote_checkpointing(4)
    return [
        # HPL one-shot checkpoint, trace-assisted groups and global coordination
        ScenarioConfig("hpl", 16, "GP", one_shot(q.checkpoint_at_s),
                       workload_options=dict(q.hpl_options), max_group_size=8, seed=7),
        ScenarioConfig("hpl", 16, "NORM", one_shot(q.checkpoint_at_s),
                       workload_options=dict(q.hpl_options), max_group_size=8, seed=7),
        # HPL periodic schedule (exercises coordinator back-pressure)
        ScenarioConfig("hpl", 32, "GP", periodic(8.0),
                       workload_options=dict(q.hpl_options), max_group_size=8,
                       do_restart=False, seed=7),
        # NPB workloads
        ScenarioConfig("cg", 16, "GP4", one_shot(q.checkpoint_at_s),
                       workload_options=dict(q.cg_options), seed=7),
        ScenarioConfig("sp", 16, "GP1", one_shot(q.checkpoint_at_s),
                       workload_options=dict(q.sp_options), seed=7),
        # remote checkpoint storage + VCL (Chandy-Lamport) periodic waves
        ScenarioConfig("cg", 16, "VCL", periodic(q.vcl_interval_s), cluster=remote,
                       workload_options=dict(q.cg_options), do_restart=False, seed=7),
        # synthetic patterns (the kernel-benchmark workload among them)
        ScenarioConfig("halo2d", 16, "NORM", one_shot(0.3), seed=3),
        ScenarioConfig("ring", 8, "GP", one_shot(0.3), seed=3),
    ]


def scenario_label(config: ScenarioConfig) -> str:
    """Stable key of one parity scenario (used in the golden JSON)."""
    sched = "none"
    if config.schedule is not None:
        if config.schedule.interval_s is not None:
            sched = f"every{config.schedule.interval_s:g}s"
        else:
            sched = "+".join(f"{t:g}s" for t in config.schedule.times)
    storage = config.cluster.checkpoint_storage
    return (f"{config.workload}/n{config.n_ranks}/{config.method}/{sched}/"
            f"{storage}/seed{config.seed}")


def parity_metrics(result) -> Dict[str, object]:
    """Every simulated metric the parity tests compare (bit-exact)."""
    return {
        "makespan": result.makespan,
        "aggregate_checkpoint_time": result.aggregate_checkpoint_time,
        "aggregate_coordination_time": result.aggregate_coordination_time,
        "aggregate_restart_time": result.aggregate_restart_time,
        "resend_bytes": result.resend_bytes,
        "resend_operations": result.resend_operations,
        "checkpoints_completed": result.checkpoints_completed,
        "mean_checkpoint_duration": result.mean_checkpoint_duration,
        "gap_fraction": result.gap_fraction,
    }
