"""Elastic-restart experiments: work conservation + shrink-restart sweep.

Elastic restart decouples a job's *domain* (its fixed set of work units) from
the rank count executing it: a :class:`~repro.workloads.domain.Partition`
assigns units to ranks, and the per-rank scripts are derived views that merge
co-located units deadlock-free.  Two measurements close the loop:

* **Work conservation** — the same domain partitioned onto fewer or more
  ranks (shrink *and* expand) must carry exactly the same total compute
  seconds, point-to-point message bytes and resident memory.  The
  conservation table measures this from the derived per-rank scripts
  themselves (not the domain arithmetic), so any merge bug — a dropped
  self-send, a duplicated step, a mis-remapped peer — shows up as a broken
  invariant.

* **Shrink restart** — a campaign grid (method × workload) where the node
  hosting rank 1 dies mid-run with *zero* spares: the recovery manager cannot
  replace the victim, so it repartitions the dead rank's units onto the
  survivors, ships the newest surviving checkpoint images to the adopters,
  and relaunches the job one rank smaller.  The repartition table reports the
  measured shrink per cell: ranks before → after, units migrated, image bytes
  shipped, and end-to-end survival.

Both run at QUICK-ish scale; the shrink grid goes through the campaign
engine, so re-runs are served from the store.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.ckpt.scheduler import periodic
from repro.cluster.topology import GIDEON_300
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.experiments.runner import build_workload
from repro.mpi.ops import Compute, Isend, Send, SendRecv
from repro.workloads.domain import Partition


#: workload knobs the elastic sweeps are calibrated for: long enough that a
#: few checkpoint waves complete before the kill, images small enough (4 MB)
#: that shipping one to an adopter is visible but not dominant
DEFAULT_WORKLOAD_OPTIONS: Dict[str, Dict[str, object]] = {
    "halo2d": {"iterations": 60, "memory_bytes": 4 * 1024 * 1024},
    "ring": {"iterations": 60, "memory_bytes": 4 * 1024 * 1024},
}


def measured_totals(workload, n_ranks: int) -> Tuple[float, int, int]:
    """(compute seconds, p2p message bytes, memory bytes) summed over the
    derived per-rank scripts of ``workload`` under its current partition."""
    compute = 0.0
    message = 0
    for rank in range(n_ranks):
        for op in workload.program(rank):
            if isinstance(op, Compute):
                compute += op.seconds
            elif isinstance(op, (Send, Isend)):
                message += op.nbytes
            elif isinstance(op, SendRecv):
                message += op.send_nbytes
    memory = sum(workload.memory_bytes(rank) for rank in range(n_ranks))
    return compute, message, memory


def work_conservation_table(
    workloads: Sequence[str] = ("halo2d", "hpl"),
    n_units: int = 8,
    rank_counts: Sequence[int] = (4, 6, 8, 12),
    workload_options: Optional[Dict[str, Dict[str, object]]] = None,
) -> Table:
    """Equal-total-work invariant across rank counts (shrink and expand).

    One domain of ``n_units`` units per workload, block-partitioned onto each
    rank count; every row must show the identical totals.  The ``conserved``
    column compares against the identity partition's measured totals
    (compute to 1e-9 relative — summation order differs — bytes exactly).
    """
    if n_units not in rank_counts:
        rank_counts = tuple(rank_counts) + (n_units,)
    options = dict(DEFAULT_WORKLOAD_OPTIONS)
    options.update(workload_options or {})
    table = Table(
        title=(f"Work conservation under repartition ({n_units} units; "
               "totals measured from the derived per-rank scripts)"),
        columns=["workload", "ranks", "compute (s)", "message MB",
                 "memory MB", "conserved"],
    )
    mb = 1024.0 * 1024.0
    for name in workloads:
        workload = build_workload(name, n_units, dict(options.get(name, {})))
        reference = None
        for n_ranks in sorted(rank_counts):
            workload.set_partition(Partition.block(n_units, n_ranks))
            compute, message, memory = measured_totals(workload, n_ranks)
            if reference is None:
                reference = (compute, message, memory)
            conserved = (math.isclose(compute, reference[0], rel_tol=1e-9)
                         and message == reference[1]
                         and memory == reference[2])
            table.add_row(name, n_ranks, round(compute, 4),
                          round(message / mb, 2), round(memory / mb, 1),
                          "ok" if conserved else "BROKEN")
    return table


def elastic_shrink_configs(
    workloads: Sequence[str] = ("halo2d", "hpl"),
    methods: Sequence[str] = ("NORM", "GP4"),
    n_ranks: int = 8,
    seeds: Sequence[int] = (7,),
    checkpoint_interval_s: float = 0.4,
    failure_at_s: float = 1.7,
    workload_options: Optional[Dict[str, Dict[str, object]]] = None,
) -> List[ScenarioConfig]:
    """The scenario set behind one shrink-restart grid.

    Every cell kills the node hosting rank 1 with zero spares and
    ``elastic=True``, on a cluster writing checkpoints to remote storage —
    the one tier a dead node cannot take with it, so the victim's newest
    image is always shippable to its adopter.  (Node-local storage would
    force every shrink back to step 0; the from-scratch path is covered by
    the unit tests.)
    """
    if not workloads or not methods or not seeds:
        raise ValueError("workloads, methods and seeds must be non-empty")
    options = dict(DEFAULT_WORKLOAD_OPTIONS)
    options.update(workload_options or {})
    cluster = dataclasses.replace(
        GIDEON_300, n_nodes=max(GIDEON_300.n_nodes, n_ranks),
        checkpoint_storage="remote", name="elastic-shrink")
    configs: List[ScenarioConfig] = []
    for name in workloads:
        for method in methods:
            for seed in seeds:
                configs.append(ScenarioConfig(
                    workload=name,
                    n_ranks=n_ranks,
                    method=method,
                    schedule=periodic(checkpoint_interval_s),
                    cluster=cluster,
                    seed=seed,
                    workload_options=dict(options.get(name, {})),
                    do_restart=False,
                    failure=FailureSpec(at_s=failure_at_s, victim_rank=1,
                                        seed=seed, elastic=True),
                ))
    return configs


def repartition_table(results) -> Table:
    """Measured shrink per cell: ranks before → after, migration, shipping."""
    table = Table(
        title="Elastic shrink restart (zero spares, kill of rank 1's node)",
        columns=["workload", "method", "seed", "survived", "shrinks",
                 "ranks", "units moved", "shipped MB", "makespan (s)"],
    )
    mb = 1024.0 * 1024.0
    for result in sorted(results, key=lambda r: (r.config.workload,
                                                 r.config.method,
                                                 r.config.seed)):
        cfg = result.config
        after = result.ranks_after_restart
        table.add_row(
            cfg.workload, cfg.method, cfg.seed,
            "yes" if result.survived else "NO",
            result.shrink_restarts,
            f"{cfg.n_ranks}→{after}" if after is not None else str(cfg.n_ranks),
            result.units_migrated,
            round(result.repartition_bytes_shipped / mb, 1),
            round(result.makespan, 3))
    return table


def elastic_tables_from_store(store) -> Dict[str, object]:
    """Elastic-shrink repartition table recomputed from a store — no simulation.

    Selects the ``done`` rows the shrink sweeps stamped (cluster name
    ``"elastic-shrink"``) and rebuilds :func:`repartition_table` from the
    stored payloads.  The observatory server's ``/api/tables/elastic``
    backend; value-equal to :func:`elastic_experiment`'s table for the same
    store.  (The conservation table is simulation-free but not store-derived,
    so it stays with the experiment.)
    """
    from repro.campaign.export import stored_results

    results = stored_results(store, cluster_name="elastic-shrink")
    return {"results": results, "repartition": repartition_table(results)}


def elastic_experiment(
    workloads: Sequence[str] = ("halo2d", "hpl"),
    methods: Sequence[str] = ("NORM", "GP4"),
    n_ranks: int = 8,
    seeds: Sequence[int] = (7,),
    rank_counts: Sequence[int] = (4, 6, 8, 12),
    priority: int = 0,
) -> Dict[str, object]:
    """Run (or fetch) the shrink grid and build both elastic tables.

    Returns the raw ``results``, the ``repartition_table``, the (simulation-
    free) ``conservation_table``, and ``by_cell`` for programmatic access.
    """
    from repro.campaign.executor import get_default_campaign

    configs = elastic_shrink_configs(workloads=workloads, methods=methods,
                                     n_ranks=n_ranks, seeds=seeds)
    results = get_default_campaign().run(configs, priority=priority)
    by_cell = {(r.config.workload, r.config.method, r.config.seed): r
               for r in results}
    return {
        "results": results,
        "by_cell": by_cell,
        "repartition_table": repartition_table(results),
        "conservation_table": work_conservation_table(
            workloads=workloads, n_units=n_ranks, rank_counts=rank_counts),
    }
