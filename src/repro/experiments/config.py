"""Scenario and profile configuration for the experiment harness.

A :class:`ScenarioConfig` fully describes one simulated run: which workload at
which scale, which grouping method, when checkpoints are requested, where the
images go, and the random seed.  An :class:`ExperimentProfile` scales whole
figures up or down: ``FULL`` uses the paper's process counts, ``QUICK`` uses
reduced scales and workload fidelity so the integration tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.topology import GIDEON_300, ClusterSpec
from repro.ckpt.scheduler import CheckpointSchedule


#: grouping methods evaluated in the paper
METHODS: Tuple[str, ...] = ("GP", "GP1", "GP4", "NORM", "VCL")


@dataclass(frozen=True)
class FailureSpec:
    """Live failure injection for one scenario (measured failure experiments).

    Three modes:

    * ``at_s`` set — one deterministic kill: the node hosting ``victim_rank``
      dies at ``at_s`` seconds of simulated time (the measured counterpart of
      the analytic "failure at X% of execution" model).
    * ``mtbf_per_node_s`` set — seeded random kills from a
      :class:`~repro.cluster.failure.PoissonFailureModel` at the given
      per-node MTBF, capped at ``max_failures`` events.
    * ``switch_outage_at_s`` set — one deterministic *correlated* failure: at
      that time, every node behind edge switch ``outage_switch`` dies at once
      (:class:`~repro.cluster.failure.SwitchOutageFailureModel`), destroying
      the victims' local disks unless ``outage_spares_disks`` is True.  This
      is the storage-tier survivability scenario: node-local checkpoint
      images die with their rack, so only cross-switch partner replicas or
      the remote file system can restore the job.
    * ``switch_outage_rate_per_switch_s`` set — seeded *random* correlated
      outages: each edge switch fails as an independent Poisson process at
      this rate, capped at ``max_failures`` events (the stochastic companion
      of the deterministic outage above; ``outage_spares_disks`` applies to
      every drawn event).

    Exactly one of the four must be set.  ``detection_delay_s`` models the
    dispatcher noticing the dead node before starting the group rollback.

    Recovery placement (the recovery-orchestration subsystem):

    * ``n_spares`` reserves that many idle nodes as a
      :class:`~repro.recovery.spare.SparePool`; a victim's ranks relaunch on
      a spare (same-switch preferred) instead of waiting for the dead node,
    * ``reboot_delay_s`` is the reboot time an *in-place* restart of a
      crashed node must wait out (spare placements skip it; the default 0
      keeps the pre-spare model of instantly restartable nodes),
    * ``serialize_recoveries`` disables concurrent recovery scheduling
      (every failure waits the previous recovery out) — the baseline the
      concurrency experiments compare against,
    * ``elastic`` enables shrink restart: when a victim cannot be replaced
      from the spare pool, the job repartitions its work units onto the
      surviving ranks (:class:`~repro.core.restart.ElasticRestart`) instead
      of waiting out an in-place node reboot.
    """

    at_s: Optional[float] = None
    victim_rank: int = 0
    mtbf_per_node_s: Optional[float] = None
    max_failures: int = 1
    detection_delay_s: float = 0.25
    seed: int = 0
    n_spares: int = 0
    reboot_delay_s: float = 0.0
    serialize_recoveries: bool = False
    switch_outage_at_s: Optional[float] = None
    outage_switch: int = 0
    #: True models a connectivity-only outage: nodes reboot with their local
    #: checkpoint images intact (the default outage destroys the disks)
    outage_spares_disks: bool = False
    switch_outage_rate_per_switch_s: Optional[float] = None
    elastic: bool = False

    def __post_init__(self) -> None:
        modes = sum(x is not None for x in
                    (self.at_s, self.mtbf_per_node_s, self.switch_outage_at_s,
                     self.switch_outage_rate_per_switch_s))
        if modes != 1:
            raise ValueError("set exactly one of at_s (deterministic kill), "
                             "mtbf_per_node_s (Poisson kills), "
                             "switch_outage_at_s (correlated switch outage) "
                             "or switch_outage_rate_per_switch_s (Poisson "
                             "switch outages)")
        if (self.switch_outage_rate_per_switch_s is not None
                and self.switch_outage_rate_per_switch_s <= 0):
            raise ValueError("switch_outage_rate_per_switch_s must be positive")
        if self.at_s is not None and self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.switch_outage_at_s is not None and self.switch_outage_at_s < 0:
            raise ValueError("switch_outage_at_s must be non-negative")
        if self.outage_switch < 0:
            raise ValueError("outage_switch must be non-negative")
        if self.victim_rank < 0:
            raise ValueError("victim_rank must be non-negative")
        if self.mtbf_per_node_s is not None and self.mtbf_per_node_s <= 0:
            raise ValueError("mtbf_per_node_s must be positive")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.detection_delay_s < 0:
            raise ValueError("detection_delay_s must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.n_spares < 0:
            raise ValueError("n_spares must be non-negative")
        if self.reboot_delay_s < 0:
            raise ValueError("reboot_delay_s must be non-negative")


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulated run of one workload under one checkpointing method.

    Parameters
    ----------
    workload:
        ``"hpl"``, ``"cg"``, ``"sp"`` or one of the synthetic names
        (``"ring"``, ``"halo2d"``, ``"master-worker"``, ``"all-to-all"``).
    n_ranks:
        Number of MPI processes.
    method:
        Grouping / protocol method (one of :data:`METHODS`).
    schedule:
        When checkpoint requests are issued (None = no checkpoints).
    cluster:
        Hardware description; defaults to the Gideon-300-like cluster.
    seed:
        Master seed for the run's random streams.
    workload_options:
        Extra keyword arguments forwarded to the workload parameter class
        (e.g. ``problem_size`` for HPL).
    max_group_size:
        ``G`` bound for trace-assisted group formation (None = paper default
        ⌈√n⌉; the HPL experiments use P = 8 to match Table 1).
    do_restart:
        Whether to simulate a restart from the last checkpoint after the run.
    failure:
        Optional live failure injection (measured failure experiments): ranks
        are killed mid-run and the group rollback + replay actually executes,
        instead of the analytic post-hoc loss model.
    """

    workload: str
    n_ranks: int
    method: str = "GP"
    schedule: Optional[CheckpointSchedule] = None
    cluster: ClusterSpec = GIDEON_300
    seed: int = 0
    workload_options: Dict[str, object] = field(default_factory=dict)
    max_group_size: Optional[int] = None
    do_restart: bool = True
    failure: Optional[FailureSpec] = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.failure is not None and self.failure.victim_rank >= self.n_ranks:
            raise ValueError(
                f"failure.victim_rank {self.failure.victim_rank} out of range "
                f"[0, {self.n_ranks})")

    def with_method(self, method: str) -> "ScenarioConfig":
        """Copy of this scenario under a different grouping method."""
        return replace(self, method=method)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Copy of this scenario with a different master seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ExperimentProfile:
    """Scales a whole figure's sweep up (paper scale) or down (test scale).

    Parameters
    ----------
    name:
        "full" or "quick".
    hpl_scales / cg_scales / sp_scales:
        Process counts used for the per-figure sweeps.
    hpl_options / cg_options / sp_options:
        Workload parameter overrides (smaller problems under "quick").
    repeats:
        Number of seeds averaged per data point (the paper repeats 5×).
    checkpoint_at_s:
        Time of the single checkpoint in the one-shot experiments.
    """

    name: str
    hpl_scales: Tuple[int, ...]
    cg_scales: Tuple[int, ...]
    sp_scales: Tuple[int, ...]
    coordination_scales: Tuple[int, ...]
    hpl_options: Dict[str, object] = field(default_factory=dict)
    cg_options: Dict[str, object] = field(default_factory=dict)
    sp_options: Dict[str, object] = field(default_factory=dict)
    repeats: int = 1
    checkpoint_at_s: float = 60.0
    interval_sweep_s: Tuple[float, ...] = (0.0, 60.0, 120.0, 180.0, 300.0)
    vcl_interval_s: float = 30.0

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.checkpoint_at_s < 0:
            raise ValueError("checkpoint_at_s must be non-negative")


#: The paper's scales: HPL 16..128 step 16 (Figures 5-9), Figure 1 sweeps
#: 12..68, CG uses 16/32/64/128, SP uses the square counts 64/81/100/121.
FULL = ExperimentProfile(
    name="full",
    hpl_scales=(16, 32, 48, 64, 80, 96, 112, 128),
    cg_scales=(16, 32, 64, 128),
    sp_scales=(64, 81, 100, 121),
    coordination_scales=(16, 24, 32, 40, 48, 56, 64),
    repeats=2,
    checkpoint_at_s=60.0,
)

#: Reduced scales and problem sizes for fast integration tests.
#:
#: The periodic intervals must stay comfortably above the checkpoint *wave*
#: duration at these scales (~6 s for NORM on HPL at 32 ranks): an interval
#: below it starves the application — every cycle is spent checkpointing, the
#: makespan diverges and the interval-sweep experiments effectively hang.
QUICK = ExperimentProfile(
    name="quick",
    hpl_scales=(16, 32),
    cg_scales=(16, 32),
    sp_scales=(16, 25),
    coordination_scales=(8, 16, 24),
    hpl_options={"problem_size": 6000, "block_size": 200, "max_steps": 12},
    cg_options={"na": 30000, "max_steps": 8},
    # time_steps keeps the SP run past checkpoint_at_s at every quick scale
    # (at 25 ranks, 60 steps finish in ~1.97 s — before the t = 2 s request)
    sp_options={"grid_points": 64, "max_steps": 6, "time_steps": 120},
    repeats=1,
    checkpoint_at_s=2.0,
    interval_sweep_s=(0.0, 8.0, 14.0, 24.0),
    vcl_interval_s=8.0,
)


def profile_by_name(name: str) -> ExperimentProfile:
    """Look up a profile ("full" or "quick")."""
    profiles = {"full": FULL, "quick": QUICK}
    try:
        return profiles[name]
    except KeyError as exc:
        raise ValueError(f"unknown profile {name!r}; expected one of {sorted(profiles)}") from exc
