"""Storage-tier experiments: overhead vs restart cost vs survivability.

The multi-level checkpoint-storage hierarchy trades steady-state overhead for
correlated-failure survival:

* **L1** (local disk) is nearly free but dies with the node,
* **L1+L2** adds an async cross-switch partner replica — steady-state cost is
  the bounded-buffer back-pressure plus disk/network contention, and a whole
  dead node (or rack) stops mattering,
* **L1+L2+L3** adds the remote file system — the most expensive writes, and
  nothing short of losing the servers themselves can strand the job.

These sweeps measure all three corners on one campaign grid
(method × tier policy × failure model): the failure-free cells give the
steady-state overhead ordering (L1 ≤ L1+L2 ≤ L1+L2+L3 in makespan), the
node-crash and switch-outage cells give measured restart cost per tier, and
the *survivability matrix* reports which (policy, failure) combinations
recover at all — unsurvivable cells (a switch outage with same-switch or no
partner replicas) are reported as such, not crashed: the run is declared
failed the moment no surviving copy of a required image exists, and its
payload records ``survived = 0``.

:func:`tier_cost_calibration` closes the loop back to the advisor: it
extracts measured per-tier checkpoint costs from the sweep and feeds
:func:`repro.analysis.advisor.suggest_multilevel_intervals`, yielding the
FTI-style "every k-th checkpoint to L2/L3" promotion counters a
:class:`~repro.storage.policy.StoragePolicy` consumes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.advisor import suggest_multilevel_intervals
from repro.analysis.reporting import Table
from repro.ckpt.scheduler import CheckpointSchedule
from repro.cluster.topology import GIDEON_300
from repro.experiments.config import FailureSpec, ScenarioConfig
from repro.storage.policy import (
    PARTNER_SAME_SWITCH,
    StoragePolicy,
    full_hierarchy,
    local_only,
    partner_replicated,
)


#: workload knobs the tier sweeps are calibrated for: compute-dominated
#: iterations, and images small enough (4 MB) that an async partner copy
#: drains over the contended Fast-Ethernet NIC well within one checkpoint
#: interval — replication back-pressure is measurable without drowning the
#: application
DEFAULT_WORKLOAD_OPTIONS = {
    "iterations": 30,
    "compute_seconds": 0.3,
    "memory_bytes": 4 * 1024 * 1024,
    "message_bytes": 32768,
}

#: the tier policies the default sweep compares (None = legacy single-tier)
TIER_POLICIES: Dict[str, Optional[StoragePolicy]] = {
    "L1": local_only(),
    "L1+L2": partner_replicated(),
    "L1+L2same": partner_replicated(placement=PARTNER_SAME_SWITCH),
    "L1+L2+L3": full_hierarchy(),
}

#: the failure scenarios the default sweep crosses the policies with
FAILURE_KINDS: Tuple[str, ...] = ("none", "node-crash", "switch-outage")


def policy_label(config: ScenarioConfig) -> str:
    """Human-readable tier-policy label of one scenario config."""
    policy = config.cluster.storage_policy
    if policy is None:
        return f"legacy-{config.cluster.checkpoint_storage}"
    for name, preset in TIER_POLICIES.items():
        if preset == policy:
            return name
    return policy.describe()


def failure_label(config: ScenarioConfig) -> str:
    """Which failure scenario a config runs under."""
    fs = config.failure
    if fs is None:
        return "none"
    if fs.switch_outage_at_s is not None:
        return "switch-outage"
    if fs.at_s is not None:
        return "node-crash"
    return "poisson"


def _failure_spec(kind: str, at_s: float, seed: int, n_spares: int,
                  reboot_delay_s: float) -> Optional[FailureSpec]:
    if kind == "none":
        return None
    if kind == "node-crash":
        return FailureSpec(at_s=at_s, victim_rank=0, seed=seed,
                           n_spares=n_spares, reboot_delay_s=reboot_delay_s)
    if kind == "switch-outage":
        return FailureSpec(switch_outage_at_s=at_s, outage_switch=0, seed=seed,
                           n_spares=n_spares, reboot_delay_s=reboot_delay_s)
    raise ValueError(f"unknown failure kind {kind!r}; "
                     f"expected one of {FAILURE_KINDS}")


def storage_tier_configs(
    workload: str = "halo2d",
    n_ranks: int = 16,
    methods: Sequence[str] = ("NORM", "GP", "GP1"),
    policies: Sequence[str] = ("L1", "L1+L2", "L1+L2+L3"),
    failures: Sequence[str] = FAILURE_KINDS,
    seeds: Sequence[int] = (0,),
    checkpoint_times: Sequence[float] = (2.0, 5.0, 8.0),
    failure_at_s: float = 12.0,
    nodes_per_switch: int = 4,
    n_spares: int = 2,
    reboot_delay_s: float = 5.0,
    max_group_size: Optional[int] = 8,
    workload_options: Optional[Dict[str, object]] = None,
) -> List[ScenarioConfig]:
    """The scenario set behind one storage-tier grid.

    The cluster is sized to the job (``n_ranks + n_spares`` nodes) with a
    small edge-switch radix so several switches exist even at QUICK scale —
    cross-switch partner placement and the whole-switch outage need at least
    two racks to mean anything.  Every cell sees the identical outage
    (switch 0 at ``failure_at_s``), so survivability differences are purely
    the storage policy's doing.

    Checkpoints use *explicit* request times (the Figure 13/14 fairness
    setup): explicit times are deferred — never dropped — under coordinator
    back-pressure, so every cell completes the same number of checkpoints
    and the makespans compare per-checkpoint cost, not checkpoint count.
    An unbounded periodic schedule would feed back (an expensive tier makes
    the run longer, which schedules *more* checkpoints, which makes it
    longer still) and drown the ordering in count differences.
    """
    if not methods or not policies or not failures or not seeds:
        raise ValueError("methods, policies, failures and seeds must be non-empty")
    if workload_options is None and workload == "halo2d":
        workload_options = dict(DEFAULT_WORKLOAD_OPTIONS)
    schedule = CheckpointSchedule(times=tuple(checkpoint_times))
    configs: List[ScenarioConfig] = []
    for policy_name in policies:
        try:
            policy = TIER_POLICIES[policy_name]
        except KeyError as exc:
            raise ValueError(f"unknown policy {policy_name!r}; expected one of "
                             f"{sorted(TIER_POLICIES)}") from exc
        cluster = dataclasses.replace(
            GIDEON_300, n_nodes=n_ranks + n_spares,
            nodes_per_switch=nodes_per_switch,
            storage_policy=policy, name="storage-tiers")
        for method in methods:
            for kind in failures:
                for seed in seeds:
                    configs.append(ScenarioConfig(
                        workload=workload,
                        n_ranks=n_ranks,
                        method=method,
                        schedule=schedule,
                        cluster=cluster,
                        seed=seed,
                        workload_options=dict(workload_options or {}),
                        max_group_size=max_group_size,
                        do_restart=False,
                        failure=_failure_spec(kind, failure_at_s, seed,
                                              n_spares, reboot_delay_s),
                    ))
    return configs


def _first_seen(values) -> List:
    out: List = []
    for value in values:
        if value not in out:
            out.append(value)
    return out


def overhead_table(results,
                   methods: Optional[Sequence[str]] = None,
                   policies: Optional[Sequence[str]] = None) -> Table:
    """Steady-state overhead per (method, policy) from failure-free cells.

    A pure aggregation over (live or stored) results — nothing is
    re-simulated, so the observatory can serve it straight from a campaign
    store.  ``methods``/``policies`` fix the row order and the per-method
    baseline (the first policy listed); when omitted they derive in
    first-seen result order, which for a store filled by
    :func:`storage_tier_experiment` reproduces the sweep's own ordering —
    the served table is value-equal to the CLI's.
    """
    results = list(results)
    by_cell: Dict[Tuple[str, str, str, int], object] = {}
    for result in results:
        cfg = result.config
        by_cell[(cfg.method, policy_label(cfg), failure_label(cfg),
                 cfg.seed)] = result
    if methods is None:
        methods = _first_seen(r.config.method for r in results)
    if policies is None:
        policies = _first_seen(policy_label(r.config) for r in results)

    if results:
        first = results[0].config
        schedule = first.schedule
        n_checkpoints = len(schedule.times) if schedule is not None else 0
        context = (f"{first.workload}, {first.n_ranks} ranks, "
                   f"{n_checkpoints} equal-count checkpoints, failure-free")
    else:
        context = "no stored results"
    overhead = Table(
        title=f"Steady-state storage-tier overhead ({context})",
        columns=["method", "policy", "makespan (s)", "overhead vs L1",
                 "ckpt phase (s)", "L1 MB", "L2 MB", "L3 MB",
                 "partner copies", "stalls"],
    )
    mb = 1024.0 * 1024.0

    def _ckpt_phase_seconds(result) -> float:
        # phase-attributed checkpoint time from the metrics registry
        # (payload v6 "phase_times") — the telemetry layer's one source of
        # truth, not re-derived from ApplicationResult fields
        checkpoint = (result.phase_times or {}).get("checkpoint") or {}
        return sum((checkpoint.get("stages") or {}).values())

    for method in methods:
        baseline = None
        for policy in policies:
            cell = [r for (m, p, f, _s), r in sorted(by_cell.items())
                    if m == method and p == policy and f == "none"]
            if not cell:
                continue
            makespan = sum(r.makespan for r in cell) / len(cell)
            if baseline is None:
                baseline = makespan
            written = {lvl: sum(r.tier_bytes_written.get(lvl, 0) for r in cell)
                       for lvl in ("L1", "L2", "L3")}
            overhead.add_row(
                method, policy, round(makespan, 3),
                f"{makespan / baseline - 1.0:+.2%}",
                round(sum(_ckpt_phase_seconds(r) for r in cell) / len(cell), 3),
                round(written["L1"] / mb, 1), round(written["L2"] / mb, 1),
                round(written["L3"] / mb, 1),
                sum(r.partner_copies for r in cell),
                sum(r.replication_stalls for r in cell))
    return overhead


def survivability_matrix(results) -> Table:
    """(policy × failure kind) → survived / UNSURVIVABLE, with restart cost."""
    cells: Dict[Tuple[str, str], List] = {}
    for result in results:
        key = (policy_label(result.config), failure_label(result.config))
        cells.setdefault(key, []).append(result)
    policies = sorted({p for p, _ in cells})
    kinds = [k for k in ("none", "node-crash", "switch-outage", "poisson")
             if any(key[1] == k for key in cells)]
    table = Table(
        title="Survivability matrix (per tier policy × failure scenario)",
        columns=["policy"] + list(kinds),
    )
    for policy in policies:
        row: List[object] = [policy]
        for kind in kinds:
            members = cells.get((policy, kind))
            if not members:
                row.append("-")
                continue
            survived = sum(1 for m in members if m.survived)
            if survived < len(members):
                row.append(f"UNSURVIVABLE ({survived}/{len(members)})")
            elif kind == "none":
                row.append("ok")
            else:
                recovery = max(m.measured_recovery_time_s for m in members)
                row.append(f"recovers ({recovery:.2f}s max)")
        table.add_row(*row)
    return table


def storage_tier_experiment(
    workload: str = "halo2d",
    n_ranks: int = 16,
    methods: Sequence[str] = ("NORM", "GP", "GP1"),
    policies: Sequence[str] = ("L1", "L1+L2", "L1+L2+L3"),
    failures: Sequence[str] = FAILURE_KINDS,
    seeds: Sequence[int] = (0,),
    checkpoint_times: Sequence[float] = (2.0, 5.0, 8.0),
    failure_at_s: float = 12.0,
    nodes_per_switch: int = 4,
    n_spares: int = 2,
    reboot_delay_s: float = 5.0,
    priority: int = 0,
) -> Dict[str, object]:
    """Run (or fetch) the storage-tier grid and aggregate it.

    Returns the raw ``results``, an ``overhead_table`` (failure-free makespan
    and per-tier bytes per (method, policy) — the measured steady-state cost
    of each additional level), a ``survivability`` matrix table, and
    ``by_cell`` for programmatic access.
    """
    from repro.campaign.executor import get_default_campaign

    configs = storage_tier_configs(
        workload=workload, n_ranks=n_ranks, methods=methods,
        policies=policies, failures=failures, seeds=seeds,
        checkpoint_times=checkpoint_times, failure_at_s=failure_at_s,
        nodes_per_switch=nodes_per_switch, n_spares=n_spares,
        reboot_delay_s=reboot_delay_s)
    results = get_default_campaign().run(configs, priority=priority)

    by_cell: Dict[Tuple[str, str, str, int], object] = {}
    for result in results:
        cfg = result.config
        by_cell[(cfg.method, policy_label(cfg), failure_label(cfg),
                 cfg.seed)] = result

    return {
        "results": results,
        "by_cell": by_cell,
        "overhead_table": overhead_table(results, methods=methods,
                                         policies=policies),
        "survivability": survivability_matrix(results),
    }


def tables_from_store(store) -> Dict[str, object]:
    """Storage-tier tables recomputed from a store's payloads — no simulation.

    Selects the ``done`` rows the storage-tier sweeps stamped (cluster name
    ``"storage-tiers"``) and rebuilds the overhead table and survivability
    matrix purely from the stored metrics.  This is the observatory server's
    ``/api/tables/{overhead,survivability}`` backend: the tables are
    value-equal to what :func:`storage_tier_experiment` reports for the same
    store, but a cold read costs one aggregation pass instead of a sweep.
    """
    from repro.campaign.export import stored_results

    results = stored_results(store, cluster_name="storage-tiers")
    return {
        "results": results,
        "overhead": overhead_table(results),
        "survivability": survivability_matrix(results),
    }


def tier_cost_calibration(
    results,
    crash_mtbf_s: float,
    node_loss_mtbf_s: float,
    outage_mtbf_s: float,
    method: str = "GP",
) -> Dict[str, object]:
    """Measured per-tier costs → multi-level interval/promotion suggestion.

    The incremental cost of each level is read off the failure-free sweep
    cells: L1's cost is the L1-only mean checkpoint duration; L2's is the
    L1+L2 mean minus L1's (the back-pressure and contention the partner
    copies add per checkpoint); L3's the L1+L2+L3 mean minus L1+L2's.  Those
    feed :func:`~repro.analysis.advisor.suggest_multilevel_intervals` against
    the caller's per-failure-class MTBFs, yielding per-tier intervals and the
    ``l2_every`` / ``l3_every`` promotion counters.
    """
    samples: Dict[str, List[float]] = {}
    for result in results:
        cfg = result.config
        if cfg.method != method or failure_label(cfg) != "none":
            continue
        samples.setdefault(policy_label(cfg), []).append(
            result.mean_checkpoint_duration)
    means = {policy: sum(values) / len(values)
             for policy, values in samples.items()}
    required = ("L1", "L1+L2", "L1+L2+L3")
    missing = [p for p in required if p not in means]
    if missing:
        raise ValueError(f"calibration needs failure-free cells for {required}; "
                         f"missing {missing} (method {method!r})")
    floor = 1e-4
    costs = {
        "L1": max(means["L1"], floor),
        "L2": max(means["L1+L2"] - means["L1"], floor),
        "L3": max(means["L1+L2+L3"] - means["L1+L2"], floor),
    }
    suggestion = suggest_multilevel_intervals(
        costs,
        {"L1": crash_mtbf_s, "L2": node_loss_mtbf_s, "L3": outage_mtbf_s},
    )
    table = Table(
        title=f"Multi-level interval suggestion ({method}, measured tier costs)",
        columns=["level", "cost/ckpt (s)", "MTBF (s)", "interval (s)",
                 "promote every"],
    )
    for level in ("L1", "L2", "L3"):
        table.add_row(level, round(costs[level], 4),
                      round(suggestion.mtbf_s[level], 1),
                      round(suggestion.intervals_s[level], 1),
                      f"{suggestion.multipliers[level]}-th ckpt"
                      if level != "L1" else "every ckpt")
    return {"suggestion": suggestion, "costs": costs, "table": table}
