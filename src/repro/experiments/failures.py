"""Failure-injection extension experiments (beyond the paper's figures).

The paper motivates group-based checkpointing with reduced work loss: because
checkpoints are cheaper, they can be taken more often, so a failure destroys
less work, and only the affected group has to roll back.  These experiments
quantify that argument with the failure models from
:mod:`repro.cluster.failure`:

* :func:`expected_work_loss_experiment` — expected lost work per failure as a
  function of checkpoint interval and grouping method (analytic post-hoc
  model on a failure-free run),
* :func:`measured_work_loss_experiment` — the *measured* counterpart: a rank
  is actually killed mid-run (:class:`~repro.cluster.failure.FailureInjector`)
  and the group rollback + log replay executes live, so lost work, recovery
  time and replay volume are observed rather than modelled,
* :func:`failure_rate_sweep` — the ``failure_rate`` axis: best interval and
  total fault-tolerance cost per grouping method across per-node failure
  rates,
* :func:`rollback_scope_experiment` — how many processes must roll back when
  one node fails, under each grouping method.

The simulated scenarios behind :func:`expected_work_loss_experiment` and
:func:`failure_rate_sweep` are expressed as a declarative
:class:`~repro.campaign.grid.ParameterGrid` (method × schedule) and executed
through the process-wide default campaign, so repeated sweeps are served from
the store, run in parallel with ``REPRO_CAMPAIGN_WORKERS``, and resume after
interruption like every figure sweep.  The failure-rate axis itself is
analytic (the rate scales the expected number of failures, not the simulated
run), so one simulated grid serves every rate point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.advisor import expected_overhead_fraction, suggest_checkpoint_interval
from repro.analysis.reporting import Series, Table, series_table
from repro.cluster.failure import ExponentialFailureModel, expected_lost_work
from repro.core.groups import GroupSet
from repro.experiments.config import ExperimentProfile, FULL, FailureSpec, ScenarioConfig
from repro.experiments.runner import obtain_groups
from repro.cluster.topology import GIDEON_300
from repro.ckpt.scheduler import periodic
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class WorkLossPoint:
    """Expected lost work for one (method, interval) combination."""

    method: str
    interval_s: float
    checkpoints_completed: int
    expected_loss_s: float
    execution_time_s: float


def work_loss_grid(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    methods: Tuple[str, ...] = ("GP", "NORM"),
    include_baseline: bool = False,
):
    """The (method × checkpoint-schedule) grid behind the failure experiments.

    ``include_baseline`` adds a no-checkpoint scenario per method, used by
    :func:`failure_rate_sweep` to separate checkpoint overhead from the
    application's own runtime.
    """
    from repro.campaign.grid import ParameterGrid

    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    schedules: List[object] = [periodic(interval) for interval in intervals]
    if include_baseline:
        schedules.insert(0, None)
    return ParameterGrid(
        axes={"method": tuple(methods), "schedule": tuple(schedules)},
        base=dict(
            workload="hpl",
            n_ranks=n,
            workload_options=dict(profile.hpl_options),
            max_group_size=8,
            do_restart=False,
            seed=11,
        ),
    )


def _run_grid(grid) -> Dict[Tuple[str, Optional[object]], object]:
    """Execute a failure grid through the default campaign, keyed by (method, schedule)."""
    from repro.campaign.executor import get_default_campaign

    results = get_default_campaign().run(grid.expand())
    return {(r.config.method, r.config.schedule): r for r in results}


def expected_work_loss_experiment(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    failure_fraction: float = 0.6,
) -> Dict[str, object]:
    """Expected lost work when a failure strikes, per grouping method and interval.

    A failure is assumed to strike at ``failure_fraction`` of the (method's
    own) execution; the lost work is the time since the last *completed*
    checkpoint wave of the failed process's group.  Scenarios run through the
    default campaign (cached, parallel, resumable).
    """
    if not 0.0 < failure_fraction < 1.0:
        raise ValueError("failure_fraction must be in (0, 1)")
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    grid = work_loss_grid(profile, n, intervals)
    by_point = _run_grid(grid)
    points: List[WorkLossPoint] = []
    series: Dict[str, Series] = {}
    schedules = {interval: periodic(interval) for interval in intervals}
    for method in ("GP", "NORM"):
        series[method] = Series(name=f"{method} expected loss (s)")
        for interval in intervals:
            result = by_point[(method, schedules[interval])]
            failure_time = result.makespan * failure_fraction
            # completed checkpoint times of the group containing rank 0
            loss = expected_lost_work(
                interval, failure_time, result.rank0_checkpoint_end_times
            )
            points.append(
                WorkLossPoint(
                    method=method,
                    interval_s=interval,
                    checkpoints_completed=result.checkpoints_completed,
                    expected_loss_s=loss,
                    execution_time_s=result.makespan,
                )
            )
            series[method].append(interval, loss)
    table = series_table(
        f"Expected lost work after a failure at {int(failure_fraction * 100)}% of execution "
        f"(HPL, {n} processes)",
        list(series.values()),
        x_label="interval (s)",
    )
    return {"points": points, "series": list(series.values()), "table": table}


@dataclass(frozen=True)
class MeasuredWorkLossPoint:
    """Measured vs analytic work loss for one (method, interval) combination."""

    method: str
    interval_s: float
    failure_time_s: float
    #: ranks that actually rolled back in the measured run
    rollback_ranks: int
    #: rollback scope the grouping predicts (the analytic model's multiplier)
    predicted_scope: int
    measured_lost_work_s: float
    measured_recovery_time_s: float
    replayed_bytes: int
    replayed_messages: int
    skipped_bytes: int
    #: per-process analytic loss (time since rank 0's last completed ckpt)
    analytic_loss_per_rank_s: float
    #: analytic total = per-rank loss × predicted rollback scope
    analytic_total_loss_s: float
    makespan_s: float
    failure_free_makespan_s: float


def _victim_scope(method: str, n_ranks: int, profile: ExperimentProfile,
                  victim_rank: int = 0, max_group_size: int = 8) -> int:
    """How many processes the grouping method predicts will roll back."""
    if method == "NORM" or method == "VCL":
        return n_ranks
    if method == "GP1":
        return 1
    if method == "GP4":
        return len(GroupSet.contiguous(n_ranks, 4).members(victim_rank))
    groups = obtain_groups("hpl", n_ranks, GIDEON_300, dict(profile.hpl_options),
                           max_group_size=max_group_size)
    return len(groups.members(victim_rank))


def measured_work_loss_grid(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    methods: Tuple[str, ...] = ("NORM", "GP", "GP1"),
    failure_fraction: float = 0.6,
    detection_delay_s: float = 0.25,
) -> Tuple[List[ScenarioConfig], Dict[Tuple[str, float], object]]:
    """The measured-failure scenario set (one live kill per grid cell).

    Phase 1 runs the failure-free (method × interval) grid through the
    default campaign to learn each cell's makespan; phase 2 builds one
    scenario per cell with a :class:`~repro.experiments.config.FailureSpec`
    that kills rank 0's node at ``failure_fraction`` of that makespan.
    Returns the measured configs plus the failure-free results keyed by
    ``(method, interval)`` (the analytic baseline the comparison needs).
    """
    if not 0.0 < failure_fraction < 1.0:
        raise ValueError("failure_fraction must be in (0, 1)")
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    base_grid = work_loss_grid(profile, n, intervals, methods)
    by_point = _run_grid(base_grid)
    schedules = {interval: periodic(interval) for interval in intervals}
    configs: List[ScenarioConfig] = []
    baselines: Dict[Tuple[str, float], object] = {}
    for method in methods:
        for interval in intervals:
            baseline = by_point[(method, schedules[interval])]
            baselines[(method, interval)] = baseline
            failure = FailureSpec(
                at_s=baseline.makespan * failure_fraction,
                victim_rank=0,
                detection_delay_s=detection_delay_s,
            )
            configs.append(ScenarioConfig(
                workload="hpl",
                n_ranks=n,
                method=method,
                schedule=schedules[interval],
                workload_options=dict(profile.hpl_options),
                max_group_size=8,
                do_restart=False,
                seed=11,
                failure=failure,
            ))
    return configs, baselines


def measured_work_loss_experiment(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    methods: Tuple[str, ...] = ("NORM", "GP", "GP1"),
    failure_fraction: float = 0.6,
    detection_delay_s: float = 0.25,
) -> Dict[str, object]:
    """Kill a rank mid-run and *measure* the group rollback, per method/interval.

    The measured counterpart of :func:`expected_work_loss_experiment`: the
    same campaign grid, but each cell's run suffers a live node failure at
    ``failure_fraction`` of its failure-free makespan.  Only the victim's
    group rolls back (to its last coordinated checkpoint); out-of-group
    ranks replay their sender logs over the simulated network and keep
    executing.  Reported per cell: measured total lost work, recovery time,
    replay volume, and the analytic prediction (per-rank loss since the last
    completed checkpoint × predicted rollback scope) on the same grid.
    """
    from repro.campaign.executor import get_default_campaign

    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    configs, baselines = measured_work_loss_grid(
        profile, n, intervals, methods, failure_fraction, detection_delay_s)
    results = get_default_campaign().run(configs)
    by_cell = {(r.config.method, r.config.schedule.interval_s): r for r in results}

    points: List[MeasuredWorkLossPoint] = []
    measured_series: Dict[str, Series] = {}
    analytic_series: Dict[str, Series] = {}
    table = Table(
        title=(f"Measured vs analytic work loss (HPL, {n} processes; kill at "
               f"{int(failure_fraction * 100)}% of execution)"),
        columns=["method", "interval (s)", "rolled back", "measured loss (s)",
                 "analytic loss (s)", "recovery (s)", "replayed (MB)"],
    )
    for method in methods:
        measured_series[method] = Series(name=f"{method} measured loss (s)")
        analytic_series[method] = Series(name=f"{method} analytic loss (s)")
        for interval in intervals:
            result = by_cell[(method, interval)]
            baseline = baselines[(method, interval)]
            failure_time = baseline.makespan * failure_fraction
            per_rank = expected_lost_work(
                interval, failure_time, baseline.rank0_checkpoint_end_times)
            scope = _victim_scope(method, n, profile)
            analytic_total = per_rank * scope
            point = MeasuredWorkLossPoint(
                method=method,
                interval_s=interval,
                failure_time_s=failure_time,
                rollback_ranks=result.rollback_ranks_total,
                predicted_scope=scope,
                measured_lost_work_s=result.measured_lost_work_s,
                measured_recovery_time_s=result.measured_recovery_time_s,
                replayed_bytes=result.replayed_bytes,
                replayed_messages=result.replayed_messages,
                skipped_bytes=result.skipped_bytes,
                analytic_loss_per_rank_s=per_rank,
                analytic_total_loss_s=analytic_total,
                makespan_s=result.makespan,
                failure_free_makespan_s=baseline.makespan,
            )
            points.append(point)
            measured_series[method].append(interval, point.measured_lost_work_s)
            analytic_series[method].append(interval, analytic_total)
            table.add_row(method, interval, point.rollback_ranks,
                          round(point.measured_lost_work_s, 2),
                          round(analytic_total, 2),
                          round(point.measured_recovery_time_s, 3),
                          round(point.replayed_bytes / 1e6, 3))
    return {
        "points": points,
        "measured_series": list(measured_series.values()),
        "analytic_series": list(analytic_series.values()),
        "table": table,
    }


@dataclass(frozen=True)
class FailureRatePoint:
    """Best checkpointing configuration for one (failure_rate, method) pair."""

    failure_rate_per_node_s: float
    method: str
    best_interval_s: float
    checkpoint_overhead_s: float
    expected_failures: float
    expected_loss_s: float
    expected_total_cost_s: float


def failure_rate_sweep(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    failure_rates: Sequence[float] = (1e-7, 1e-6, 1e-5, 1e-4),
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    methods: Tuple[str, ...] = ("GP", "NORM"),
    failure_fraction: float = 0.6,
) -> Dict[str, object]:
    """The ``failure_rate`` axis: cheapest fault-tolerance setup per rate.

    For every per-node failure rate (failures per node-second), every grouping
    method and every candidate interval, combines

    * the *measured* checkpoint overhead (makespan with checkpoints minus the
      method's own no-checkpoint makespan, from the simulated grid), and
    * the *expected* rework (expected number of failures during the run times
      the measured lost work per failure, using rank 0's completed checkpoint
      times)

    and reports the interval minimising the total per (rate, method).  Only
    the (method × schedule) grid is simulated — the rate axis is analytic, so
    the same campaign rows serve every rate point.

    An interval whose run completed *zero* checkpoints (longer than the
    execution itself) is not a checkpointing configuration at all — such
    candidates are excluded from the per-rate minimisation rather than being
    reported as a "best interval" with vacuously zero overhead.  If every
    candidate interval is too long, a :class:`ValueError` names the fix.
    """
    if not failure_rates:
        raise ValueError("failure_rates must not be empty")
    if any(rate <= 0 for rate in failure_rates):
        raise ValueError("failure rates must be positive")
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    grid = work_loss_grid(profile, n, intervals, methods, include_baseline=True)
    by_point = _run_grid(grid)
    schedules = {interval: periodic(interval) for interval in intervals}

    table = Table(
        title=f"Failure-rate sweep (HPL, {n} processes; failure at "
              f"{int(failure_fraction * 100)}% of execution)",
        columns=["rate (/node/s)", "method", "best interval (s)",
                 "ckpt overhead (s)", "E[failures]", "E[loss] (s)", "E[total] (s)"],
    )
    points: List[FailureRatePoint] = []
    series = {m: Series(name=f"{m} expected total cost (s)") for m in methods}
    for rate in failure_rates:
        for method in methods:
            baseline = by_point[(method, None)].makespan
            best: Optional[FailureRatePoint] = None
            for interval in intervals:
                result = by_point[(method, schedules[interval])]
                if result.checkpoints_completed == 0:
                    # the run never checkpointed: not a candidate configuration
                    continue
                overhead = result.makespan - baseline
                loss = expected_lost_work(
                    interval,
                    result.makespan * failure_fraction,
                    result.rank0_checkpoint_end_times,
                )
                expected_failures = rate * n * result.makespan
                total = overhead + expected_failures * loss
                point = FailureRatePoint(
                    failure_rate_per_node_s=rate,
                    method=method,
                    best_interval_s=interval,
                    checkpoint_overhead_s=overhead,
                    expected_failures=expected_failures,
                    expected_loss_s=loss,
                    expected_total_cost_s=total,
                )
                if best is None or point.expected_total_cost_s < best.expected_total_cost_s:
                    best = point
            if best is None:
                makespans = [by_point[(method, schedules[i])].makespan for i in intervals]
                raise ValueError(
                    f"no candidate interval completed a checkpoint for method {method!r} "
                    f"(intervals {tuple(intervals)} vs makespans ~{min(makespans):.1f}s); "
                    f"choose intervals shorter than the execution time"
                )
            points.append(best)
            series[best.method].append(rate, best.expected_total_cost_s)
            table.add_row(rate, best.method, best.best_interval_s,
                          best.checkpoint_overhead_s, best.expected_failures,
                          best.expected_loss_s, best.expected_total_cost_s)
    return {"points": points, "series": list(series.values()), "table": table, "grid": grid}


def rollback_scope_experiment(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
) -> Dict[str, object]:
    """How many processes roll back when a single node fails, per grouping method.

    Under a global coordinated checkpoint every process restarts; under the
    group-based scheme only the failed process's group does (plus log replay
    from out-of-group peers, which do *not* roll back).
    """
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    groups = obtain_groups("hpl", n, GIDEON_300, dict(profile.hpl_options), max_group_size=8)
    schemes = {
        "NORM": GroupSet.single(n),
        "GP": groups,
        "GP4": GroupSet.contiguous(n, 4),
        "GP1": GroupSet.singletons(n),
    }
    table = Table(
        title=f"Rollback scope after one node failure ({n} processes)",
        columns=["method", "processes rolled back", "fraction of system"],
    )
    out: Dict[str, int] = {}
    for name, groupset in schemes.items():
        scope = len(groupset.members(0))
        out[name] = scope
        table.add_row(name, scope, scope / n)
    return {"scope": out, "table": table}


def mtbf_overhead_experiment(
    checkpoint_costs: Dict[str, float],
    mtbf_per_node_s: float = 2_000_000.0,
    n_nodes: int = 128,
    restart_costs: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """End-to-end fault-tolerance overhead per method at the optimal interval.

    Combines measured per-checkpoint costs with a node-failure model to show
    the practical consequence of cheaper checkpoints: a shorter optimal
    interval and lower total overhead.
    """
    model = ExponentialFailureModel(mtbf_per_node_s, rng=RandomStreams(3))
    mtbf = model.system_mtbf(n_nodes)
    restart_costs = restart_costs or {}
    table = Table(
        title=f"Fault-tolerance overhead at system MTBF {mtbf / 3600.0:.1f} h ({n_nodes} nodes)",
        columns=["method", "ckpt cost (s)", "optimal interval (s)", "overhead fraction"],
    )
    out = {}
    for method, cost in checkpoint_costs.items():
        suggestion = suggest_checkpoint_interval(cost, mtbf)
        overhead = expected_overhead_fraction(
            suggestion.interval_s, cost, mtbf, restart_costs.get(method, 0.0)
        )
        out[method] = {"interval_s": suggestion.interval_s, "overhead": overhead}
        table.add_row(method, cost, suggestion.interval_s, overhead)
    return {"results": out, "table": table, "system_mtbf_s": mtbf}
