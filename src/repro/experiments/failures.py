"""Failure-injection extension experiments (beyond the paper's figures).

The paper motivates group-based checkpointing with reduced work loss: because
checkpoints are cheaper, they can be taken more often, so a failure destroys
less work, and only the affected group has to roll back.  These experiments
quantify that argument with the failure models from
:mod:`repro.cluster.failure`:

* :func:`expected_work_loss_experiment` — expected lost work per failure as a
  function of checkpoint interval and grouping method,
* :func:`rollback_scope_experiment` — how many processes must roll back when
  one node fails, under each grouping method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.advisor import expected_overhead_fraction, suggest_checkpoint_interval
from repro.analysis.reporting import Series, Table, series_table
from repro.cluster.failure import ExponentialFailureModel, expected_lost_work
from repro.core.groups import GroupSet
from repro.experiments.config import ExperimentProfile, FULL, ScenarioConfig
from repro.experiments.runner import obtain_groups, run_scenario
from repro.cluster.topology import GIDEON_300
from repro.ckpt.scheduler import periodic
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class WorkLossPoint:
    """Expected lost work for one (method, interval) combination."""

    method: str
    interval_s: float
    checkpoints_completed: int
    expected_loss_s: float
    execution_time_s: float


def expected_work_loss_experiment(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
    intervals: Tuple[float, ...] = (60.0, 120.0, 180.0),
    failure_fraction: float = 0.6,
) -> Dict[str, object]:
    """Expected lost work when a failure strikes, per grouping method and interval.

    A failure is assumed to strike at ``failure_fraction`` of the (method's
    own) execution; the lost work is the time since the last *completed*
    checkpoint wave of the failed process's group.
    """
    if not 0.0 < failure_fraction < 1.0:
        raise ValueError("failure_fraction must be in (0, 1)")
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    points: List[WorkLossPoint] = []
    series: Dict[str, Series] = {}
    for method in ("GP", "NORM"):
        series[method] = Series(name=f"{method} expected loss (s)")
        for interval in intervals:
            result = run_scenario(
                ScenarioConfig(
                    workload="hpl",
                    n_ranks=n,
                    method=method,
                    schedule=periodic(interval),
                    workload_options=dict(profile.hpl_options),
                    max_group_size=8,
                    do_restart=False,
                    seed=11,
                )
            )
            failure_time = result.makespan * failure_fraction
            # completed checkpoint times of the group containing rank 0
            ckpt_times = sorted(
                rec.end for rec in result.app.checkpoint_records if rec.rank == 0
            )
            loss = expected_lost_work(interval, failure_time, ckpt_times)
            points.append(
                WorkLossPoint(
                    method=method,
                    interval_s=interval,
                    checkpoints_completed=result.checkpoints_completed,
                    expected_loss_s=loss,
                    execution_time_s=result.makespan,
                )
            )
            series[method].append(interval, loss)
    table = series_table(
        f"Expected lost work after a failure at {int(failure_fraction * 100)}% of execution "
        f"(HPL, {n} processes)",
        list(series.values()),
        x_label="interval (s)",
    )
    return {"points": points, "series": list(series.values()), "table": table}


def rollback_scope_experiment(
    profile: ExperimentProfile = FULL,
    n_ranks: Optional[int] = None,
) -> Dict[str, object]:
    """How many processes roll back when a single node fails, per grouping method.

    Under a global coordinated checkpoint every process restarts; under the
    group-based scheme only the failed process's group does (plus log replay
    from out-of-group peers, which do *not* roll back).
    """
    n = n_ranks if n_ranks is not None else profile.hpl_scales[-1]
    groups = obtain_groups("hpl", n, GIDEON_300, dict(profile.hpl_options), max_group_size=8)
    schemes = {
        "NORM": GroupSet.single(n),
        "GP": groups,
        "GP4": GroupSet.contiguous(n, 4),
        "GP1": GroupSet.singletons(n),
    }
    table = Table(
        title=f"Rollback scope after one node failure ({n} processes)",
        columns=["method", "processes rolled back", "fraction of system"],
    )
    out: Dict[str, int] = {}
    for name, groupset in schemes.items():
        scope = len(groupset.members(0))
        out[name] = scope
        table.add_row(name, scope, scope / n)
    return {"scope": out, "table": table}


def mtbf_overhead_experiment(
    checkpoint_costs: Dict[str, float],
    mtbf_per_node_s: float = 2_000_000.0,
    n_nodes: int = 128,
    restart_costs: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """End-to-end fault-tolerance overhead per method at the optimal interval.

    Combines measured per-checkpoint costs with a node-failure model to show
    the practical consequence of cheaper checkpoints: a shorter optimal
    interval and lower total overhead.
    """
    model = ExponentialFailureModel(mtbf_per_node_s, rng=RandomStreams(3))
    mtbf = model.system_mtbf(n_nodes)
    restart_costs = restart_costs or {}
    table = Table(
        title=f"Fault-tolerance overhead at system MTBF {mtbf / 3600.0:.1f} h ({n_nodes} nodes)",
        columns=["method", "ckpt cost (s)", "optimal interval (s)", "overhead fraction"],
    )
    out = {}
    for method, cost in checkpoint_costs.items():
        suggestion = suggest_checkpoint_interval(cost, mtbf)
        overhead = expected_overhead_fraction(
            suggestion.interval_s, cost, mtbf, restart_costs.get(method, 0.0)
        )
        out[method] = {"interval_s": suggestion.interval_s, "overhead": overhead}
        table.add_row(method, cost, suggestion.interval_s, overhead)
    return {"results": out, "table": table, "system_mtbf_s": mtbf}
