"""Experiment harness: one entry point per table/figure of the paper.

* :mod:`repro.experiments.config` — scenario descriptions (workload, scale,
  grouping method, schedule, storage, seeds),
* :mod:`repro.experiments.runner` — runs one scenario end to end (trace run →
  group formation → checkpointed run → restart) and returns derived metrics,
* :mod:`repro.experiments.figures` — ``figure1()`` … ``figure14()`` and
  ``table1()``, each returning the data series/rows the paper plots,
* :mod:`repro.experiments.failures` — failure-injection extension experiments
  (expected lost work vs grouping method and checkpoint interval),
* :mod:`repro.experiments.availability` — long-horizon availability grids
  (method × MTBF × spare count under sustained Poisson failures, with
  concurrent group recoveries and spare-node placement),
* :mod:`repro.experiments.storage_tiers` — checkpoint-storage-hierarchy
  sweeps (method × tier policy × failure model): steady-state overhead per
  level, measured restart cost per surviving tier, and the correlated-failure
  survivability matrix,
* :mod:`repro.experiments.elastic` — elastic-restart sweeps: the equal-total-
  work conservation table across rank counts (shrink and expand partitions of
  one domain) and the zero-spare shrink-restart grid with its repartition
  table.
"""

from repro.experiments.config import ScenarioConfig, QUICK, FULL, ExperimentProfile
from repro.experiments.runner import ScenarioResult, run_scenario, obtain_groups
from repro.experiments import figures

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "ExperimentProfile",
    "QUICK",
    "FULL",
    "run_scenario",
    "obtain_groups",
    "figures",
]
