"""Run one scenario end to end and derive the metrics the figures need.

The standard flow for a trace-assisted ("GP") scenario is exactly the
workflow of the paper's Figure 4:

1. run the application once with the light-weight tracer linked in,
2. analyse the trace with Algorithm 2 to obtain a group definition,
3. run the application again with the group-based checkpointing protocol and
   the chosen checkpoint schedule (the tracer is no longer needed),
4. optionally restart the application from its last checkpoint and measure
   the restart preparation.

Trace runs are cached per (workload, scale, options) so sweeping the grouping
method does not re-trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.metrics import (
    CheckpointBreakdown,
    mean_checkpoint_duration,
    progress_gap_fraction,
    stage_breakdown,
)
from repro.ckpt.base import ProtocolConfig, ProtocolFamily
from repro.ckpt.presets import (
    gp1_family,
    gp4_family,
    gp_family,
    norm_family,
    vcl_family,
)
from repro.ckpt.scheduler import CheckpointSchedule
from repro.cluster.failure import (
    FailureEvent,
    FailureInjector,
    PoissonFailureModel,
    SwitchOutageFailureModel,
    TraceFailureModel,
)
from repro.cluster.topology import Cluster, ClusterSpec
from repro.core.coordinator import CheckpointCoordinator
from repro.core.formation import form_groups
from repro.core.groups import GroupSet
from repro.core.restart import RestartResult, simulate_restart
from repro.experiments.config import ScenarioConfig
from repro.mpi.runtime import ApplicationResult, MpiRuntime
from repro.mpi.trace import TraceLog
from repro.mpi.tracer import Tracer
from repro.obs import (
    Telemetry,
    harvest_scenario,
    sampling_bin_from_env,
    tracing_enabled_from_env,
)
from repro.obs import phase_times as registry_phase_times
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.base import Workload
from repro.workloads.hpl import HplParameters, HplWorkload
from repro.workloads.npb_cg import CgParameters, CgWorkload
from repro.workloads.npb_sp import SpParameters, SpWorkload
from repro.workloads.synthetic import (
    AllToAllWorkload,
    Halo2DWorkload,
    MasterWorkerWorkload,
    RingWorkload,
    SyntheticParameters,
)


# --------------------------------------------------------------------------- workloads
def build_workload(name: str, n_ranks: int, options: Optional[Dict[str, object]] = None) -> Workload:
    """Instantiate a workload by name with optional parameter overrides.

    The reserved option ``n_units`` decouples the domain size from the
    communicator size: the workload is built with that many work units and a
    block partition maps them onto the ``n_ranks`` actually running (shrink
    when ``n_units > n_ranks``, expand with idle ranks when smaller).
    Without it the domain has one unit per rank (the identity partition —
    bit-identical legacy scripts).
    """
    options = dict(options or {})
    n_units = options.pop("n_units", None)
    if n_units is not None:
        from repro.workloads.domain import Partition

        wl = build_workload(name, int(n_units), options)
        wl.set_partition(Partition.block(int(n_units), n_ranks))
        return wl
    if name == "hpl":
        return HplWorkload(n_ranks, HplParameters(**options))
    if name == "cg":
        return CgWorkload(n_ranks, CgParameters(**options))
    if name == "sp":
        return SpWorkload(n_ranks, SpParameters(**options))
    synthetic = {
        "ring": RingWorkload,
        "halo2d": Halo2DWorkload,
        "master-worker": MasterWorkerWorkload,
        "all-to-all": AllToAllWorkload,
    }
    if name in synthetic:
        params = SyntheticParameters(**options) if options else SyntheticParameters()
        return synthetic[name](n_ranks, params)
    raise ValueError(f"unknown workload {name!r}")


def _tracing_options(name: str, options: Dict[str, object]) -> Dict[str, object]:
    """Cheaper workload options for the trace run (fewer simulated steps)."""
    out = dict(options)
    if name in ("hpl", "cg", "sp"):
        out.setdefault("max_steps", 8)
    else:
        out.setdefault("iterations", 4)
    return out


# ------------------------------------------------------------------- trace & formation
_TRACE_CACHE: Dict[Tuple[str, int, Tuple[Tuple[str, object], ...]], TraceLog] = {}
_GROUP_CACHE: Dict[Tuple[str, int, Tuple[Tuple[str, object], ...], Optional[int]], GroupSet] = {}


def obtain_trace(
    workload_name: str,
    n_ranks: int,
    cluster: ClusterSpec,
    options: Optional[Dict[str, object]] = None,
    seed: int = 12345,
) -> TraceLog:
    """Run the workload once with the tracer attached and return the trace (cached)."""
    options = dict(options or {})
    key = (workload_name, n_ranks, tuple(sorted(options.items())))
    if key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    trace_opts = _tracing_options(workload_name, options)
    workload = build_workload(workload_name, n_ranks, trace_opts)
    sim = Simulator()
    cl = Cluster(sim, cluster.with_nodes(max(cluster.n_nodes, n_ranks)))
    tracer = Tracer()
    runtime = MpiRuntime(sim, cl, n_ranks, rng=RandomStreams(seed), tracer=tracer)
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())
    runtime.run_to_completion(limit_s=1e8)
    _TRACE_CACHE[key] = tracer.log
    return tracer.log


def obtain_groups(
    workload_name: str,
    n_ranks: int,
    cluster: ClusterSpec,
    options: Optional[Dict[str, object]] = None,
    max_group_size: Optional[int] = None,
) -> GroupSet:
    """Trace-assisted group formation for a workload/scale (cached)."""
    options = dict(options or {})
    key = (workload_name, n_ranks, tuple(sorted(options.items())), max_group_size)
    if key in _GROUP_CACHE:
        return _GROUP_CACHE[key]
    trace = obtain_trace(workload_name, n_ranks, cluster, options)
    formation = form_groups(trace, max_group_size=max_group_size, n_ranks=n_ranks)
    _GROUP_CACHE[key] = formation.groupset
    return formation.groupset


def build_family(
    method: str,
    n_ranks: int,
    workload_name: str,
    cluster: ClusterSpec,
    options: Optional[Dict[str, object]] = None,
    max_group_size: Optional[int] = None,
    protocol_config: Optional[ProtocolConfig] = None,
) -> ProtocolFamily:
    """Instantiate the protocol family for one of the paper's methods."""
    if method == "NORM":
        return norm_family(n_ranks, config=protocol_config)
    if method == "GP1":
        return gp1_family(n_ranks, config=protocol_config)
    if method == "GP4":
        return gp4_family(n_ranks, config=protocol_config)
    if method == "VCL":
        return vcl_family(config=protocol_config)
    if method == "GP":
        groups = obtain_groups(workload_name, n_ranks, cluster, options, max_group_size)
        return gp_family(groups, config=protocol_config)
    raise ValueError(f"unknown method {method!r}")


# ------------------------------------------------------------------------- scenario run
@dataclass
class ScenarioResult:
    """Everything measured for one scenario run."""

    config: ScenarioConfig
    app: ApplicationResult
    restart: Optional[RestartResult] = None
    groupset: Optional[GroupSet] = None
    coordinator_report: Optional[object] = None
    #: telemetry handle harvested for this run (``run_scenario`` always
    #: provides one — registry-only unless tracing was requested); results
    #: constructed by hand may leave it None, falling back to re-derivation
    telemetry: Optional[Telemetry] = None

    # -- derived metrics -----------------------------------------------------------
    @property
    def sampler(self) -> Optional[object]:
        """The run's :class:`~repro.obs.StateSampler`, if sampling was on."""
        return getattr(self.telemetry, "sampler", None)

    @property
    def sampler_summary(self) -> Dict[str, float]:
        """Compact series summaries (payload v8); empty when not sampled."""
        sampler = self.sampler
        if sampler is None or sampler.end_time is None:
            return {}
        return sampler.summary()

    @property
    def nic_util_peak(self) -> float:
        """Peak fraction of NICs with an in-flight transfer in any bin."""
        return self.sampler_summary.get("nic_util_peak", 0.0)

    @property
    def nic_util_mean(self) -> float:
        """Mean over bins of the busy-NIC fraction."""
        return self.sampler_summary.get("nic_util_mean", 0.0)

    @property
    def inbox_depth_max(self) -> float:
        """Deepest sampled inbox across all ranks and bins."""
        return self.sampler_summary.get("inbox_depth_max", 0.0)

    @property
    def log_bytes_peak(self) -> float:
        """Peak total sender-log retained bytes across bins."""
        return self.sampler_summary.get("log_bytes_peak", 0.0)

    @property
    def makespan(self) -> float:
        """End-to-end execution time of the application (including checkpoints)."""
        return self.app.makespan

    @property
    def aggregate_checkpoint_time(self) -> float:
        """Sum of per-process checkpoint durations.

        Read from the metrics registry (``phase.checkpoint.duration``) when
        telemetry was harvested; the histogram observed the same records in
        the same order, so the value is bit-identical to the re-derivation.
        """
        if self.telemetry is not None:
            hist = self.telemetry.metrics.get("phase.checkpoint.duration")
            return hist.total if hist is not None else 0.0
        return self.app.aggregate_checkpoint_time()

    @property
    def aggregate_coordination_time(self) -> float:
        """Sum of per-process coordination time (checkpoint minus image dump)."""
        if self.telemetry is not None:
            hist = self.telemetry.metrics.get("phase.checkpoint.coordination_time")
            return hist.total if hist is not None else 0.0
        return self.app.aggregate_coordination_time()

    @property
    def aggregate_restart_time(self) -> float:
        """Sum of per-process restart durations (0 if restart was not simulated)."""
        return self.restart.aggregate_restart_time if self.restart is not None else 0.0

    @property
    def resend_bytes(self) -> int:
        """Total bytes replayed during restart."""
        return self.restart.total_replay_bytes if self.restart is not None else 0

    @property
    def resend_operations(self) -> int:
        """Total resend operations during restart."""
        return self.restart.total_resend_operations if self.restart is not None else 0

    @property
    def checkpoints_completed(self) -> int:
        """Number of checkpoint waves completed."""
        return self.app.checkpoints_completed

    @property
    def mean_checkpoint_duration(self) -> float:
        """Average per-process checkpoint duration."""
        return mean_checkpoint_duration(self.app.checkpoint_records)

    @property
    def gap_fraction(self) -> float:
        """Fraction of checkpoint-window time with no application progress."""
        return progress_gap_fraction(self.app)

    @property
    def rank0_checkpoint_end_times(self) -> List[float]:
        """Completion times of rank 0's checkpoints (drives work-loss models)."""
        return sorted(rec.end for rec in self.app.checkpoint_records if rec.rank == 0)

    # -- measured failure-injection metrics -------------------------------------
    @property
    def recovery_reports(self) -> List[object]:
        """Live-recovery reports, one per injected failure (empty without one)."""
        return list(self.app.recovery)

    @property
    def failures_injected(self) -> int:
        """Number of failures that actually killed a rank mid-run."""
        return len(self.app.recovery)

    @property
    def rollback_ranks_total(self) -> int:
        """Total rank rollbacks across all injected failures."""
        return sum(len(rep.rollback_ranks) for rep in self.app.recovery)

    @property
    def measured_lost_work_s(self) -> float:
        """Measured work discarded by rollbacks (sums over ranks and failures)."""
        return sum(rep.total_lost_work_s for rep in self.app.recovery)

    @property
    def measured_recovery_time_s(self) -> float:
        """Slowest failure-to-resumption time over all injected failures."""
        return max((rep.max_recovery_time_s for rep in self.app.recovery), default=0.0)

    @property
    def replayed_bytes(self) -> int:
        """Bytes resent from sender logs during live recoveries."""
        return sum(rep.replayed_bytes for rep in self.app.recovery)

    @property
    def replayed_messages(self) -> int:
        """Log entries resent during live recoveries."""
        return sum(rep.replayed_messages for rep in self.app.recovery)

    @property
    def skipped_bytes(self) -> int:
        """Re-executed send bytes suppressed by skip accounting."""
        return sum(ctx.stats.skipped_bytes for ctx in self.app.contexts)

    # -- recovery-orchestration metrics ------------------------------------------
    @property
    def recovery_rank_seconds(self) -> float:
        """Rank-seconds spent recovering (Σ per-rank failure→resumption time)."""
        return sum(rep.recovery_rank_seconds for rep in self.app.recovery)

    @property
    def unavailable_rank_seconds(self) -> float:
        """Rank-seconds of no forward progress: discarded work + recovery."""
        return self.measured_lost_work_s + self.recovery_rank_seconds

    @property
    def availability(self) -> float:
        """Fraction of total rank-time spent making forward progress.

        ``1 − (lost work + recovery time) / (n_ranks × makespan)`` — the
        measured quantity the availability experiments sweep: group-based
        rollback confines the numerator to one group per failure, so GP
        degrades gracefully as the failure rate rises while NORM collapses.
        """
        total = self.app.n_ranks * self.makespan
        if total <= 0:
            return 1.0
        return max(0.0, 1.0 - self.unavailable_rank_seconds / total)

    @property
    def recovery_stats(self) -> Dict[str, int]:
        """Recovery-manager scheduling counters (empty for failure-free runs)."""
        return dict(self.app.recovery_stats)

    @property
    def spare_migrations(self) -> int:
        """Victim ranks relaunched on spare nodes."""
        return self.app.recovery_stats.get("spare_migrations", 0)

    @property
    def inplace_reboots(self) -> int:
        """Victim ranks that waited out a dead node's reboot in place."""
        return sum(rep.inplace_reboots for rep in self.app.recovery)

    @property
    def aborted_recoveries(self) -> int:
        """Recovery attempts superseded by a failure landing mid-recovery."""
        return self.app.recovery_stats.get("aborted_recoveries", 0)

    @property
    def max_concurrent_recoveries(self) -> int:
        """Peak number of simultaneously in-flight group recoveries."""
        return self.app.recovery_stats.get("max_concurrent_recoveries", 0)

    @property
    def spare_refills(self) -> int:
        """Rebooted victim nodes that rejoined the spare pool."""
        return self.app.recovery_stats.get("spare_refills", 0)

    # -- elastic-restart metrics ---------------------------------------------------
    @property
    def shrink_restarts(self) -> int:
        """Spare-exhausted failures resolved by repartitioning onto survivors."""
        return self.app.recovery_stats.get("shrink_restarts", 0)

    @property
    def ranks_after_restart(self) -> Optional[int]:
        """Active rank count after the last shrink (None when never shrunk)."""
        ranks = None
        for rep in self.app.recovery:
            if getattr(rep, "shrink", False):
                ranks = rep.ranks_after
        return ranks

    @property
    def units_migrated(self) -> int:
        """Work units reassigned away from dead ranks across all shrinks."""
        return sum(rep.units_migrated for rep in self.app.recovery
                   if getattr(rep, "shrink", False))

    @property
    def repartition_bytes_shipped(self) -> int:
        """Checkpoint-image bytes shipped to adopters across all shrinks."""
        return sum(rep.repartition_bytes_shipped for rep in self.app.recovery
                   if getattr(rep, "shrink", False))

    # -- storage-hierarchy metrics ------------------------------------------------
    @property
    def survived(self) -> bool:
        """False when the run was declared unsurvivable (required image lost)."""
        return self.app.aborted is None

    @property
    def abort_reason(self) -> Optional[str]:
        """Why the run was declared failed (None when it survived)."""
        return self.app.aborted

    @property
    def tier_bytes_written(self) -> Dict[str, int]:
        """Checkpoint bytes written per storage level (L1/L2/L3)."""
        return dict(self.app.storage_stats.get("tier_bytes_written", {}))

    @property
    def tier_bytes_read(self) -> Dict[str, int]:
        """Checkpoint bytes read back per storage level (L1/L2/L3)."""
        return dict(self.app.storage_stats.get("tier_bytes_read", {}))

    @property
    def partner_copies(self) -> int:
        """Completed L2 partner replications."""
        return self.app.storage_stats.get("partner_copies_completed", 0)

    @property
    def partner_copies_lost(self) -> int:
        """Partner replications that died with an endpoint mid-copy."""
        return self.app.storage_stats.get("partner_copies_lost", 0)

    @property
    def replication_stalls(self) -> int:
        """Checkpoints that waited on the bounded L2 in-flight buffer."""
        return self.app.storage_stats.get("replication_stalls", 0)

    @property
    def outages_survived(self) -> int:
        """Correlated switch outages this run recovered from end to end."""
        return len({rep.failure_time for rep in self.app.recovery
                    if getattr(rep, "cause", "crash") == "switch-outage"
                    and not getattr(rep, "unsurvivable", False)
                    and rep.ranks})

    @property
    def skipped_in_recovery(self) -> int:
        """Per-group checkpoint ticks skipped because the group was recovering."""
        if self.coordinator_report is None:
            return 0
        return getattr(self.coordinator_report, "skipped_in_recovery", 0)

    @property
    def phase_times(self):
        """Phase-attributed time breakdown from the metrics registry.

        ``{"checkpoint"|"restart"|"recovery": {"records"/"reports": n,
        "stages": {stage: total_seconds}}}`` — the payload v6 field and the
        single source the overhead tables read.  Empty when no telemetry was
        harvested (hand-built results).
        """
        if self.telemetry is None:
            return {}
        return registry_phase_times(self.telemetry)

    def breakdown(self):
        """Average per-stage checkpoint breakdown (Figure 9).

        Sourced from the registry's ``phase.checkpoint.stage.*`` histograms
        when telemetry was harvested (stage totals accumulated over the same
        records in the same order as ``stage_breakdown``, so the means are
        bit-identical); falls back to re-deriving from the records otherwise.
        """
        if self.telemetry is not None:
            m = self.telemetry.metrics
            counter = m.get("ckpt.records")
            n = int(counter.value) if counter is not None else 0
            out = CheckpointBreakdown(n_records=n)
            if n:
                prefix = "phase.checkpoint.stage."
                out.stages = {
                    inst.name[len(prefix):]: inst.total / n
                    for inst in m
                    if inst.name.startswith(prefix) and not inst.tags
                }
            return out
        return stage_breakdown(self.app.checkpoint_records)


def run_scenario(
    config: ScenarioConfig,
    protocol_config: Optional[ProtocolConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> ScenarioResult:
    """Execute one scenario (trace → formation → run → restart) and return its result.

    A metrics registry is always harvested at the end of the run (it feeds
    the payload's ``phase_times`` and the overhead tables) — that costs
    nothing during simulation.  Span *tracing* is off unless a ``telemetry``
    handle is passed in or ``REPRO_TELEMETRY=1`` is exported; either way the
    tracer only observes ``sim.now`` passively, so simulated metrics are
    bit-identical with tracing on or off.
    """
    workload = build_workload(config.workload, config.n_ranks, config.workload_options)
    cluster_spec = config.cluster.with_nodes(max(config.cluster.n_nodes, config.n_ranks))
    family = build_family(
        config.method,
        config.n_ranks,
        config.workload,
        cluster_spec,
        config.workload_options,
        config.max_group_size,
        protocol_config,
    )

    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    runtime = MpiRuntime(
        sim, cluster, config.n_ranks, protocol_family=family, rng=RandomStreams(config.seed)
    )
    if telemetry is None:
        telemetry = Telemetry(trace=tracing_enabled_from_env(),
                              sample_bin_s=sampling_bin_from_env())
    runtime.attach_telemetry(telemetry)
    runtime.set_memory(workload.memory_map())
    coordinator: Optional[CheckpointCoordinator] = None
    if config.schedule is not None:
        coordinator = CheckpointCoordinator(runtime, family, config.schedule)
        coordinator.start()
    if config.failure is not None:
        from repro.recovery import SparePool

        fs = config.failure
        if fs.at_s is not None:
            node = runtime.ctx(fs.victim_rank).node_id
            model: object = TraceFailureModel([FailureEvent(fs.at_s, node)])
        elif fs.switch_outage_at_s is not None:
            model = SwitchOutageFailureModel(
                at_s=fs.switch_outage_at_s,
                switch=fs.outage_switch,
                nodes_per_switch=cluster_spec.nodes_per_switch,
                destroy_disks=not fs.outage_spares_disks,
            )
        elif fs.switch_outage_rate_per_switch_s is not None:
            model = SwitchOutageFailureModel(
                rate_per_switch_s=fs.switch_outage_rate_per_switch_s,
                nodes_per_switch=cluster_spec.nodes_per_switch,
                rng=RandomStreams(fs.seed),
                max_outages=fs.max_failures,
                destroy_disks=not fs.outage_spares_disks,
            )
        else:
            model = PoissonFailureModel(
                rate_per_node_s=1.0 / fs.mtbf_per_node_s,
                rng=RandomStreams(fs.seed),
                max_failures=fs.max_failures,
            )
        spare_pool = SparePool(cluster, fs.n_spares) if fs.n_spares > 0 else None
        if fs.elastic:
            runtime.workload = workload
        FailureInjector(runtime, model,
                        detection_delay_s=fs.detection_delay_s,
                        spare_pool=spare_pool,
                        reboot_delay_s=fs.reboot_delay_s,
                        concurrent=not fs.serialize_recoveries,
                        elastic=fs.elastic).start()
    runtime.launch(workload.program_factory())
    app = runtime.run_to_completion(limit_s=1e8)
    if telemetry.sampler is not None:
        # close open phase intervals and stamp the end of the sampled
        # series; the separate restart simulation below is not sampled
        telemetry.sampler.finalize(sim.now)

    restart: Optional[RestartResult] = None
    if (config.do_restart and config.schedule is not None and app.snapshots()
            and app.aborted is None):
        restart = simulate_restart(app, cluster_spec, config=protocol_config)

    groupset = getattr(family, "groups", None)
    result = ScenarioResult(config=config, app=app, restart=restart,
                            groupset=groupset,
                            coordinator_report=(coordinator.report
                                                if coordinator is not None else None),
                            telemetry=telemetry)
    harvest_scenario(result, telemetry)
    return result


def average_over_seeds(
    config: ScenarioConfig,
    seeds: List[int],
    metric: Callable[[ScenarioResult], float],
    protocol_config: Optional[ProtocolConfig] = None,
) -> float:
    """Average one scalar metric over several seeds of the same scenario."""
    if not seeds:
        raise ValueError("seeds must not be empty")
    values = []
    for seed in seeds:
        result = run_scenario(config.with_seed(seed), protocol_config)
        values.append(metric(result))
    return sum(values) / len(values)


def clear_caches() -> None:
    """Forget cached traces and group formations (mainly for tests)."""
    _TRACE_CACHE.clear()
    _GROUP_CACHE.clear()
