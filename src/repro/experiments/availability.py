"""Long-horizon availability experiments (the recovery-orchestration payoff).

The paper *argues* that group-based rollback keeps the machine available as
failures become frequent — only the affected group stalls, so GP should
degrade gracefully where NORM (everyone rolls back every time) collapses —
but never measures it.  These experiments do: each cell of a
(method × per-node MTBF × spare count) grid runs the application under a
seeded :class:`~repro.cluster.failure.PoissonFailureModel` for *many*
failures per run, with the :class:`~repro.recovery.manager.RecoveryManager`
scheduling concurrent group recoveries and a
:class:`~repro.recovery.spare.SparePool` placing relaunches.  Measured per
cell (mean ± spread over the seed axis, via
:func:`repro.campaign.export.average_over_seeds`):

* **makespan** — wall time to finish the same work despite the failures,
* **availability** — fraction of rank-time making forward progress
  (1 − (lost work + recovery time) / (ranks × makespan)),
* **per-failure recovery cost** — the calibration fed back into
  :func:`repro.analysis.advisor.suggest_checkpoint_interval` in place of its
  analytic guesses (:func:`calibrated_interval_table`).

Everything runs through the default campaign: cells are cached, sweeps are
resumable, and ``priority`` lets an availability grid jump the queue of a
shared store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import dataclasses

from repro.analysis.advisor import measured_costs, suggest_checkpoint_interval
from repro.analysis.reporting import Series, Table
from repro.campaign.export import average_over_seeds
from repro.ckpt.scheduler import periodic
from repro.cluster.topology import GIDEON_300
from repro.experiments.config import FailureSpec, ScenarioConfig


#: workload knobs the availability defaults are calibrated for: enough
#: compute per iteration that lost work (not checkpoint I/O) dominates, and
#: small images so every method completes checkpoints regularly at the
#: default 2 s interval.  With these, the measured makespan ordering
#: NORM >= GP >= GP1 holds across the default failure-rate sweep.
#: (compute_seconds was re-calibrated 0.2 → 0.3 when the coordinator became
#: recovery-aware: healthy groups now keep checkpointing while another group
#: recovers, which at QUICK scale adds checkpoint I/O comparable to an
#: iteration's compute — more compute per iteration keeps lost work, the
#: quantity grouping actually protects, the dominant term.)
DEFAULT_WORKLOAD_OPTIONS = {
    "iterations": 30,
    "compute_seconds": 0.3,
    "memory_bytes": 8 * 1024 * 1024,
    "message_bytes": 32768,
}


@dataclass(frozen=True)
class AvailabilityCell:
    """Aggregated measurements of one (method, mtbf, spares) grid cell."""

    method: str
    mtbf_per_node_s: float
    n_spares: int
    n_seeds: int
    makespan_s: float
    makespan_std_s: float
    availability: float
    availability_std: float
    failures: float
    lost_work_s: float
    #: rank-seconds of recovery per failure episode (group size × wall clock;
    #: the advisor's per-failure *wall-clock* calibration divides by the
    #: rolled-back rank count instead — see advisor.measured_costs)
    recovery_cost_per_failure_s: float
    spare_migrations: float
    inplace_reboots: float
    aborted_recoveries: float
    max_concurrent_recoveries: float
    #: rebooted victim nodes that re-registered as spares (pool refill)
    spare_refills: float = 0.0


def availability_configs(
    workload: str = "halo2d",
    n_ranks: int = 16,
    methods: Sequence[str] = ("NORM", "GP", "GP1"),
    mtbf_per_node_s: Sequence[float] = (240.0, 100.0, 50.0),
    spare_counts: Sequence[int] = (0, 2),
    seeds: Sequence[int] = (0, 1),
    interval_s: float = 2.0,
    detection_delay_s: float = 0.25,
    reboot_delay_s: float = 5.0,
    max_failures: int = 6,
    max_group_size: Optional[int] = 8,
    workload_options: Optional[Dict[str, object]] = None,
    serialize_recoveries: bool = False,
) -> List[ScenarioConfig]:
    """The concrete scenario set behind one availability grid.

    One config per (method × mtbf × spares × seed); the failure stream's
    seed follows the scenario seed so the seed axis varies both the OS
    jitter and the failure times.

    The cluster is sized to the job — ``n_ranks + max(spare_counts)`` nodes —
    for two reasons: a Poisson victim then almost always hits a node that
    actually hosts a rank (on the 128-node default most events would strike
    empty nodes and be ignored), and every spare count sees the *identical*
    failure stream (node count feeds the arrival rate and victim draw), so
    spares-on vs spares-off compares the same disaster scenario.
    """
    if not methods or not mtbf_per_node_s or not spare_counts or not seeds:
        raise ValueError("methods, mtbf_per_node_s, spare_counts and seeds "
                         "must all be non-empty")
    if any(m <= 0 for m in mtbf_per_node_s):
        raise ValueError("mtbf_per_node_s values must be positive")
    if workload_options is None and workload == "halo2d":
        workload_options = dict(DEFAULT_WORKLOAD_OPTIONS)
    cluster = dataclasses.replace(
        GIDEON_300, n_nodes=n_ranks + max(spare_counts),
        name="availability")
    configs: List[ScenarioConfig] = []
    for method in methods:
        for mtbf in mtbf_per_node_s:
            for spares in spare_counts:
                for seed in seeds:
                    configs.append(ScenarioConfig(
                        workload=workload,
                        n_ranks=n_ranks,
                        method=method,
                        schedule=periodic(interval_s),
                        cluster=cluster,
                        seed=seed,
                        workload_options=dict(workload_options or {}),
                        max_group_size=max_group_size,
                        do_restart=False,
                        failure=FailureSpec(
                            mtbf_per_node_s=mtbf,
                            max_failures=max_failures,
                            detection_delay_s=detection_delay_s,
                            seed=seed,
                            n_spares=spares,
                            reboot_delay_s=reboot_delay_s,
                            serialize_recoveries=serialize_recoveries,
                        ),
                    ))
    return configs


def _first_seen(values) -> List:
    out: List = []
    for value in values:
        if value not in out:
            out.append(value)
    return out


def availability_summary(
    averaged,
    methods: Optional[Sequence[str]] = None,
    mtbf_per_node_s: Optional[Sequence[float]] = None,
    spare_counts: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Aggregate seed-averaged availability results into cells/series/table.

    A pure aggregation over stored payloads — the observatory serves it from
    a campaign store without touching the simulator.  Grid axes fix the
    row order; when omitted they derive in first-seen result order, which
    for a store filled by :func:`availability_experiment` reproduces the
    sweep's own ordering (value-equal tables).  Cells missing from the store
    (a partially-drained grid) are skipped rather than raising.
    """
    averaged = list(averaged)
    by_cell = {}
    for result in averaged:
        cfg = result.config
        by_cell[(cfg.method, cfg.failure.mtbf_per_node_s,
                 cfg.failure.n_spares)] = result
    if methods is None:
        methods = _first_seen(r.config.method for r in averaged)
    if mtbf_per_node_s is None:
        mtbf_per_node_s = _first_seen(
            r.config.failure.mtbf_per_node_s for r in averaged)
    if spare_counts is None:
        spare_counts = _first_seen(r.config.failure.n_spares for r in averaged)

    if averaged:
        first = averaged[0]
        cfg = first.config
        interval_s = cfg.schedule.interval_s if cfg.schedule else 0.0
        context = (f"{cfg.workload}, {cfg.n_ranks} ranks, "
                   f"ckpt every {interval_s:g}s, "
                   f"≤{cfg.failure.max_failures} failures/run, "
                   f"{first.metrics.get('n_seeds', 1)} seeds")
    else:
        context = "no stored results"
    cells: List[AvailabilityCell] = []
    makespan_series: Dict[Tuple[str, int], Series] = {}
    availability_series: Dict[Tuple[str, int], Series] = {}
    table = Table(
        title=f"Availability under sustained failures ({context})",
        columns=["method", "node MTBF (s)", "spares", "makespan (s)", "± (s)",
                 "availability", "failures", "loss (s)", "recovery rank-s/fail",
                 "migrated", "rebooted", "refilled", "aborted", "peak conc."],
    )
    for method in methods:
        for spares in spare_counts:
            label = f"{method}" + (f" +{spares} spares" if spares else "")
            makespan_series[(method, spares)] = Series(name=f"{label} makespan (s)")
            availability_series[(method, spares)] = Series(name=f"{label} availability")
            for mtbf in mtbf_per_node_s:
                result = by_cell.get((method, mtbf, spares))
                if result is None:
                    continue
                m = result.metrics
                failures = m.get("failures_injected", 0.0)
                recovery_per_failure = (
                    m.get("recovery_rank_seconds", 0.0) / failures
                    if failures else 0.0)
                cell = AvailabilityCell(
                    method=method,
                    mtbf_per_node_s=mtbf,
                    n_spares=spares,
                    n_seeds=m.get("n_seeds", 1),
                    makespan_s=result.makespan,
                    makespan_std_s=m.get("makespan_std", 0.0),
                    availability=m.get("availability", 1.0),
                    availability_std=m.get("availability_std", 0.0),
                    failures=failures,
                    lost_work_s=m.get("measured_lost_work_s", 0.0),
                    recovery_cost_per_failure_s=recovery_per_failure,
                    spare_migrations=m.get("spare_migrations", 0.0),
                    inplace_reboots=m.get("inplace_reboots", 0.0),
                    aborted_recoveries=m.get("aborted_recoveries", 0.0),
                    max_concurrent_recoveries=m.get("max_concurrent_recoveries", 0.0),
                    spare_refills=m.get("spare_refills", 0.0),
                )
                cells.append(cell)
                rate = 1.0 / mtbf
                makespan_series[(method, spares)].append(rate, cell.makespan_s)
                availability_series[(method, spares)].append(rate, cell.availability)
                table.add_row(
                    method, mtbf, spares,
                    round(cell.makespan_s, 2), round(cell.makespan_std_s, 2),
                    round(cell.availability, 4), round(cell.failures, 1),
                    round(cell.lost_work_s, 2),
                    round(cell.recovery_cost_per_failure_s, 3),
                    round(cell.spare_migrations, 1), round(cell.inplace_reboots, 1),
                    round(cell.spare_refills, 1),
                    round(cell.aborted_recoveries, 1),
                    round(cell.max_concurrent_recoveries, 1))
    return {
        "cells": cells,
        "makespan_series": list(makespan_series.values()),
        "availability_series": list(availability_series.values()),
        "table": table,
        "results": averaged,
    }


def availability_tables_from_store(store) -> Dict[str, object]:
    """Availability cells/table recomputed from a store — no simulation.

    Selects the ``done`` rows the availability sweeps stamped (cluster name
    ``"availability"``), collapses the seed axis, and aggregates exactly as
    :func:`availability_experiment` would.  The observatory server's
    ``/api/tables/availability`` backend.
    """
    from repro.campaign.export import average_over_seeds, stored_results

    results = stored_results(store, cluster_name="availability")
    return availability_summary(average_over_seeds(results))


def availability_experiment(
    workload: str = "halo2d",
    n_ranks: int = 16,
    methods: Sequence[str] = ("NORM", "GP", "GP1"),
    mtbf_per_node_s: Sequence[float] = (240.0, 100.0, 50.0),
    spare_counts: Sequence[int] = (0, 2),
    seeds: Sequence[int] = (0, 1),
    interval_s: float = 2.0,
    detection_delay_s: float = 0.25,
    reboot_delay_s: float = 5.0,
    max_failures: int = 6,
    max_group_size: Optional[int] = 8,
    workload_options: Optional[Dict[str, object]] = None,
    priority: int = 0,
) -> Dict[str, object]:
    """Run (or fetch) the availability grid and aggregate it per cell.

    Returns ``cells`` (one :class:`AvailabilityCell` per grid point,
    seed-averaged), ``makespan_series`` / ``availability_series`` (one line
    per (method, spares) combination over the failure-rate axis — the "GP
    degrades gracefully, NORM collapses" figure), a formatted ``table``, and
    the raw seed-averaged ``results``.
    """
    from repro.campaign.executor import get_default_campaign

    configs = availability_configs(
        workload=workload, n_ranks=n_ranks, methods=methods,
        mtbf_per_node_s=mtbf_per_node_s, spare_counts=spare_counts,
        seeds=seeds, interval_s=interval_s,
        detection_delay_s=detection_delay_s, reboot_delay_s=reboot_delay_s,
        max_failures=max_failures, max_group_size=max_group_size,
        workload_options=workload_options)
    results = get_default_campaign().run(configs, priority=priority)
    averaged = average_over_seeds(results)
    return availability_summary(averaged, methods=methods,
                                mtbf_per_node_s=mtbf_per_node_s,
                                spare_counts=spare_counts)


def calibrated_interval_table(
    results,
    mtbf_s: float,
    analytic_checkpoint_costs: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Advisor suggestions: analytic guesses vs measured-calibrated, per method.

    ``results`` are (seed-averaged) availability results; for every method
    the cell with the most injected failures calibrates
    :func:`~repro.analysis.advisor.measured_costs`.  The analytic column uses
    ``analytic_checkpoint_costs`` (falling back to the measured checkpoint
    cost) and no recovery cost — exactly what the advisor did before
    measured recovery existed — so the table shows what the measurements
    change.
    """
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    best = {}
    for result in results:
        if result.failures_injected < 1:
            continue
        method = result.config.method
        if (method not in best
                or result.failures_injected > best[method].failures_injected):
            best[method] = result
    if not best:
        raise ValueError("no availability result injected any failure; "
                         "cannot calibrate the advisor")
    table = Table(
        title=f"Checkpoint-interval suggestions at system MTBF {mtbf_s:.0f}s",
        columns=["method", "ckpt cost (s)", "recovery/failure (s)",
                 "analytic interval (s)", "calibrated interval (s)", "shift"],
    )
    suggestions = {}
    for method in sorted(best):
        costs = measured_costs(best[method])
        analytic_cost = (analytic_checkpoint_costs or {}).get(
            method, costs.checkpoint_cost_s)
        analytic = suggest_checkpoint_interval(analytic_cost, mtbf_s)
        calibrated = suggest_checkpoint_interval(
            analytic_cost, mtbf_s, measured=costs)
        suggestions[method] = {"analytic": analytic, "calibrated": calibrated,
                               "costs": costs}
        shift = calibrated.interval_s / analytic.interval_s - 1.0
        table.add_row(method, round(costs.checkpoint_cost_s, 3),
                      round(costs.recovery_cost_s, 3),
                      round(analytic.interval_s, 1),
                      round(calibrated.interval_s, 1),
                      f"{shift:+.1%}")
    return {"suggestions": suggestions, "table": table}


def concurrency_ablation(
    workload: str = "halo2d",
    n_ranks: int = 16,
    method: str = "GP4",
    mtbf_per_node_s: float = 50.0,
    n_spares: int = 0,
    seeds: Sequence[int] = (0, 1),
    interval_s: float = 2.0,
    max_failures: int = 6,
    reboot_delay_s: float = 5.0,
    priority: int = 0,
) -> Dict[str, object]:
    """Concurrent vs serialised recovery scheduling on the same failure stream.

    Runs one availability cell twice — once with the manager free to overlap
    channel-independent group recoveries, once with every failure waiting the
    previous recovery out (``serialize_recoveries=True``, the pre-manager
    behaviour) — and reports both makespans.  Concurrency can only help:
    the serialised schedule is one of the schedules the manager may pick.
    """
    from repro.campaign.executor import get_default_campaign

    out = {}
    for label, serialize in (("concurrent", False), ("serialized", True)):
        configs = availability_configs(
            workload=workload, n_ranks=n_ranks, methods=(method,),
            mtbf_per_node_s=(mtbf_per_node_s,), spare_counts=(n_spares,),
            seeds=seeds, interval_s=interval_s, max_failures=max_failures,
            reboot_delay_s=reboot_delay_s, serialize_recoveries=serialize)
        results = get_default_campaign().run(configs, priority=priority)
        out[label] = average_over_seeds(results)[0]
    table = Table(
        title=f"Concurrent vs serialised recovery ({workload}, {n_ranks} ranks, "
              f"{method}, node MTBF {mtbf_per_node_s:g}s)",
        columns=["scheduling", "makespan (s)", "availability",
                 "peak concurrent", "failures"],
    )
    for label, result in out.items():
        table.add_row(label, round(result.makespan, 2),
                      round(result.availability, 4),
                      round(result.max_concurrent_recoveries, 1),
                      round(result.metrics.get("failures_injected", 0.0), 1))
    return {"results": out, "table": table}
