"""Failure injection models.

The paper motivates group-based checkpointing with the observation that
failures usually hit a small region of a large system, so a *global* restart
throws away the work of all the healthy processes.  The failure models here
generate failure events (which node, at what time) that the experiment layer
uses to study expected lost work under different grouping methods and
checkpoint intervals (an extension experiment beyond the paper's figures,
listed in DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.sim.rng import RandomStreams


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A single node failure at a point in virtual time."""

    time: float
    node: int
    cause: str = field(default="crash", compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.node < 0:
            raise ValueError("node must be non-negative")


class FailureModel:
    """Interface: produce the failures occurring within ``[0, horizon)``."""

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        raise NotImplementedError  # pragma: no cover - interface

    def iterate(self, horizon: float, n_nodes: int) -> Iterator[FailureEvent]:
        """Failures in chronological order."""
        return iter(sorted(self.failures(horizon, n_nodes)))


class ExponentialFailureModel(FailureModel):
    """Independent exponential failures per node.

    Parameters
    ----------
    mtbf_per_node_s:
        Mean time between failures of a single node.  System MTBF is
        ``mtbf_per_node_s / n_nodes``, which is how large systems become
        failure-prone even with reliable components.
    rng:
        Named random streams; failures use the ``"failures"`` stream.
    max_failures:
        Optional cap on the number of generated events.
    """

    def __init__(
        self,
        mtbf_per_node_s: float,
        rng: Optional[RandomStreams] = None,
        max_failures: Optional[int] = None,
    ) -> None:
        if mtbf_per_node_s <= 0:
            raise ValueError("mtbf_per_node_s must be positive")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        self.mtbf_per_node_s = mtbf_per_node_s
        self.rng = rng if rng is not None else RandomStreams(0)
        self.max_failures = max_failures

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        out: List[FailureEvent] = []
        for node in range(n_nodes):
            t = 0.0
            while True:
                t += self.rng.exponential(f"failures:node{node}", self.mtbf_per_node_s)
                if t >= horizon:
                    break
                out.append(FailureEvent(time=t, node=node))
        out.sort()
        if self.max_failures is not None:
            out = out[: self.max_failures]
        return out

    def system_mtbf(self, n_nodes: int) -> float:
        """Expected time to the first failure anywhere in an ``n_nodes`` system."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.mtbf_per_node_s / n_nodes


class TraceFailureModel(FailureModel):
    """Failures replayed from an explicit list (deterministic scenarios)."""

    def __init__(self, events: Sequence[FailureEvent]) -> None:
        self._events = sorted(events)

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        return [
            ev
            for ev in self._events
            if ev.time < horizon and ev.node < n_nodes
        ]


def expected_lost_work(
    checkpoint_interval_s: float,
    failure_time_s: float,
    checkpoint_times: Sequence[float],
) -> float:
    """Work lost by a failure at ``failure_time_s`` given completed checkpoints.

    The lost work is the time elapsed since the most recent completed
    checkpoint (or since the start of the run if none completed yet) —
    exactly the quantity the paper argues is reduced when the group-based
    scheme affords more frequent checkpoints (Figure 10 discussion).
    ``checkpoint_interval_s`` is accepted for symmetry with analytic
    formulas; it is only used to validate inputs.
    """
    if checkpoint_interval_s < 0:
        raise ValueError("checkpoint_interval_s must be non-negative")
    if failure_time_s < 0:
        raise ValueError("failure_time_s must be non-negative")
    last = 0.0
    for t in checkpoint_times:
        if t < 0:
            raise ValueError("checkpoint times must be non-negative")
        if t <= failure_time_s:
            last = max(last, t)
    return failure_time_s - last
