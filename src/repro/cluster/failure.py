"""Failure injection models and the live failure injector.

The paper motivates group-based checkpointing with the observation that
failures usually hit a small region of a large system, so a *global* restart
throws away the work of all the healthy processes.  The failure models here
generate failure events (which node, at what time); two consumers exist:

* the analytic experiment layer (``expected_lost_work`` and the
  failure-rate sweeps) models lost work post hoc on a failure-free run, and
* :class:`FailureInjector` turns the events into *simulator interrupts*: the
  victim node's rank processes are killed mid-run and
  :class:`~repro.core.restart.LiveRecovery` performs the actual group
  rollback + log replay, producing measured recovery metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.runtime import MpiRuntime
    from repro.sim.engine import SimProcess
    from repro.sim.primitives import Event


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A single node failure at a point in virtual time.

    ``destroys_disk`` distinguishes a process/OS crash (the node's disk — and
    the checkpoint images on it — survives an in-place reboot) from a
    destructive correlated event (a whole-rack power hit): with the disk gone,
    only off-node checkpoint copies (partner replica, remote file system) can
    restore the victim's ranks.
    """

    time: float
    node: int
    cause: str = field(default="crash", compare=False)
    destroys_disk: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.node < 0:
            raise ValueError("node must be non-negative")


class FailureModel:
    """Interface: produce the failures occurring within ``[0, horizon)``."""

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        raise NotImplementedError  # pragma: no cover - interface

    def iterate(self, horizon: float, n_nodes: int) -> Iterator[FailureEvent]:
        """Failures in chronological order."""
        return iter(sorted(self.failures(horizon, n_nodes)))


class ExponentialFailureModel(FailureModel):
    """Independent exponential failures per node.

    Parameters
    ----------
    mtbf_per_node_s:
        Mean time between failures of a single node.  System MTBF is
        ``mtbf_per_node_s / n_nodes``, which is how large systems become
        failure-prone even with reliable components.
    rng:
        Named random streams; failures use the ``"failures"`` stream.
    max_failures:
        Optional cap on the number of generated events.
    """

    def __init__(
        self,
        mtbf_per_node_s: float,
        rng: Optional[RandomStreams] = None,
        max_failures: Optional[int] = None,
    ) -> None:
        if mtbf_per_node_s <= 0:
            raise ValueError("mtbf_per_node_s must be positive")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        self.mtbf_per_node_s = mtbf_per_node_s
        self.rng = rng if rng is not None else RandomStreams(0)
        self.max_failures = max_failures

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        out: List[FailureEvent] = []
        for node in range(n_nodes):
            t = 0.0
            while True:
                t += self.rng.exponential(f"failures:node{node}", self.mtbf_per_node_s)
                if t >= horizon:
                    break
                out.append(FailureEvent(time=t, node=node))
        out.sort()
        if self.max_failures is not None:
            out = out[: self.max_failures]
        return out

    def system_mtbf(self, n_nodes: int) -> float:
        """Expected time to the first failure anywhere in an ``n_nodes`` system."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.mtbf_per_node_s / n_nodes


class PoissonFailureModel(FailureModel):
    """A system-wide Poisson failure process with uniformly random victims.

    Failures arrive at total rate ``rate_per_node_s × n_nodes`` (the classic
    "system MTBF shrinks with scale" model) and each event strikes a node
    chosen uniformly at random.  Unlike :class:`ExponentialFailureModel`
    (which draws one independent arrival process per node), the draw order
    here is a single stream, so the k-th failure of a run is identical for a
    fixed seed regardless of node count changes elsewhere — the property the
    failure-injection determinism tests pin down.
    """

    def __init__(
        self,
        rate_per_node_s: float,
        rng: Optional[RandomStreams] = None,
        max_failures: Optional[int] = None,
        stream: str = "poisson-failures",
    ) -> None:
        if rate_per_node_s <= 0:
            raise ValueError("rate_per_node_s must be positive")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        self.rate_per_node_s = rate_per_node_s
        self.rng = rng if rng is not None else RandomStreams(0)
        self.max_failures = max_failures
        self.stream = stream

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        mean_gap = 1.0 / (self.rate_per_node_s * n_nodes)
        out: List[FailureEvent] = []
        t = 0.0
        while True:
            if self.max_failures is not None and len(out) >= self.max_failures:
                break
            t += self.rng.exponential(self.stream, mean_gap)
            if t >= horizon:
                break
            node = self.rng.integers(f"{self.stream}:victims", 0, n_nodes)
            out.append(FailureEvent(time=t, node=node))
        return out

    def system_mtbf(self, n_nodes: int) -> float:
        """Expected time between failures anywhere in an ``n_nodes`` system."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return 1.0 / (self.rate_per_node_s * n_nodes)


class TraceFailureModel(FailureModel):
    """Failures replayed from an explicit list (deterministic scenarios)."""

    def __init__(self, events: Sequence[FailureEvent]) -> None:
        self._events = sorted(events)

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        return [
            ev
            for ev in self._events
            if ev.time < horizon and ev.node < n_nodes
        ]


class SwitchOutageFailureModel(FailureModel):
    """Correlated whole-switch outages: every node behind one edge switch dies.

    This is the spatially-correlated failure mode the ROADMAP's availability
    work left open and the storage-tier experiments exercise: a top-of-rack
    switch (or its rack PDU) fails and *all* of its nodes go down at the same
    instant.  Same-switch checkpoint replicas die with their primaries, so
    only cross-switch partner copies or the remote file system can restore
    the victims.

    Two modes:

    * ``at_s`` set — one deterministic outage of edge switch ``switch`` at
      that time,
    * ``rate_per_switch_s`` set — seeded Poisson outages at total rate
      ``rate × n_switches`` with a uniformly drawn victim switch per event
      (a single stream, so the k-th outage is seed-stable).

    ``destroy_disks`` (default True) marks the victims' local disks — and the
    checkpoint images on them — as lost: the model represents a destructive
    rack event, not a graceful power-down.  Set it False to model a pure
    connectivity outage whose nodes reboot with their images intact.
    """

    def __init__(
        self,
        at_s: Optional[float] = None,
        switch: int = 0,
        nodes_per_switch: int = 32,
        rate_per_switch_s: Optional[float] = None,
        rng: Optional[RandomStreams] = None,
        max_outages: Optional[int] = None,
        destroy_disks: bool = True,
        stream: str = "switch-outages",
    ) -> None:
        if (at_s is None) == (rate_per_switch_s is None):
            raise ValueError("set exactly one of at_s (deterministic outage) or "
                             "rate_per_switch_s (Poisson outages)")
        if at_s is not None and at_s < 0:
            raise ValueError("at_s must be non-negative")
        if switch < 0:
            raise ValueError("switch must be non-negative")
        if nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")
        if rate_per_switch_s is not None and rate_per_switch_s <= 0:
            raise ValueError("rate_per_switch_s must be positive")
        if max_outages is not None and max_outages < 0:
            raise ValueError("max_outages must be non-negative")
        self.at_s = at_s
        self.switch = switch
        self.nodes_per_switch = nodes_per_switch
        self.rate_per_switch_s = rate_per_switch_s
        self.rng = rng if rng is not None else RandomStreams(0)
        self.max_outages = max_outages
        self.destroy_disks = destroy_disks
        self.stream = stream

    def _topology(self, n_nodes: int):
        from repro.cluster.topology import NodeTopology

        return NodeTopology(n_nodes, self.nodes_per_switch)

    def outages(self, horizon: float, n_nodes: int) -> List[Tuple[float, int]]:
        """The ``(time, switch)`` outage events within ``[0, horizon)``."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        topo = self._topology(n_nodes)
        if self.at_s is not None:
            if self.at_s >= horizon or self.switch >= topo.n_switches:
                return []
            return [(self.at_s, self.switch)]
        mean_gap = 1.0 / (self.rate_per_switch_s * topo.n_switches)
        out: List[Tuple[float, int]] = []
        t = 0.0
        while True:
            if self.max_outages is not None and len(out) >= self.max_outages:
                break
            t += self.rng.exponential(self.stream, mean_gap)
            if t >= horizon:
                break
            switch = self.rng.integers(f"{self.stream}:victims", 0, topo.n_switches)
            out.append((t, switch))
        return out

    def failures(self, horizon: float, n_nodes: int) -> List[FailureEvent]:
        topo = self._topology(n_nodes)
        out: List[FailureEvent] = []
        for t, switch in self.outages(horizon, n_nodes):
            for node in topo.switch_nodes(switch):
                out.append(FailureEvent(
                    time=t, node=node, cause="switch-outage",
                    destroys_disk=self.destroy_disks))
        out.sort()
        return out


def expected_lost_work(
    checkpoint_interval_s: float,
    failure_time_s: float,
    checkpoint_times: Sequence[float],
) -> float:
    """Work lost by a failure at ``failure_time_s`` given completed checkpoints.

    The lost work is the time elapsed since the most recent completed
    checkpoint (or since the start of the run if none completed yet) —
    exactly the quantity the paper argues is reduced when the group-based
    scheme affords more frequent checkpoints (Figure 10 discussion).
    ``checkpoint_interval_s`` is accepted for symmetry with analytic
    formulas; it is only used to validate inputs.
    """
    if checkpoint_interval_s < 0:
        raise ValueError("checkpoint_interval_s must be non-negative")
    if failure_time_s < 0:
        raise ValueError("failure_time_s must be non-negative")
    last = 0.0
    for t in checkpoint_times:
        if t < 0:
            raise ValueError("checkpoint times must be non-negative")
        if t <= failure_time_s:
            last = max(last, t)
    return failure_time_s - last


class FailureInjector:
    """Turns failure events into live kills + orchestrated recovery.

    Wire-up (done before ``runtime.launch``): the injector registers itself
    as a simulation process; at each failure event's time it *submits* the
    failure to a :class:`~repro.recovery.manager.RecoveryManager`, which
    kills the victim node's rank processes (they stop mid-operation, their
    in-flight messages die with the connections), decides whether the
    recovery runs concurrently with / merges into / queues behind in-flight
    recoveries, places relaunches through an optional spare pool, and drives
    :class:`~repro.core.restart.LiveRecovery`.

    By default failures overlap (``concurrent=True``): the injector submits
    and moves on to the next event, so two failures in channel-independent
    groups recover at the same time.  ``concurrent=False`` restores the
    PR 3 behaviour — every event waits until the manager fully drains —
    which serves as the serialised baseline in the concurrency experiments.

    Parameters
    ----------
    runtime:
        The MPI runtime whose ranks may be killed.
    model:
        Where failure events come from.
    horizon_s:
        Upper bound for event generation (events beyond the application's
        actual completion are ignored).
    detection_delay_s / barrier_cost_s:
        Recovery timing knobs, forwarded through the manager.
    manager:
        An explicit :class:`RecoveryManager` (one is built otherwise).
    spare_pool / reboot_delay_s:
        Forwarded to the auto-built manager (ignored when ``manager`` is
        given): the replacement-node pool and the reboot time an in-place
        restart of a crashed node must wait out.
    concurrent:
        False serialises failure handling (the pre-manager behaviour).
    elastic:
        Forwarded to the auto-built manager: spare-pool exhaustion shrinks
        the job onto the survivors (needs ``runtime.workload`` set) instead
        of waiting out an in-place reboot.
    """

    def __init__(
        self,
        runtime: "MpiRuntime",
        model: FailureModel,
        horizon_s: float = 1e7,
        detection_delay_s: float = 0.25,
        barrier_cost_s: float = 0.02,
        manager: Optional[Any] = None,
        spare_pool: Optional[Any] = None,
        reboot_delay_s: float = 0.0,
        concurrent: bool = True,
        elastic: bool = False,
    ) -> None:
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        if detection_delay_s < 0:
            raise ValueError("detection_delay_s must be non-negative")
        self.runtime = runtime
        self.model = model
        self.horizon_s = horizon_s
        self.detection_delay_s = detection_delay_s
        self.barrier_cost_s = barrier_cost_s
        self.concurrent = concurrent
        if manager is None:
            from repro.recovery.manager import RecoveryManager

            manager = RecoveryManager(
                runtime,
                spare_pool=spare_pool,
                detection_delay_s=detection_delay_s,
                barrier_cost_s=barrier_cost_s,
                reboot_delay_s=reboot_delay_s,
                elastic=elastic,
            )
        self.manager = manager
        #: events that found no live rank on the victim node (already
        #: finished, or the node hosts no ranks)
        self.ignored_events: List[FailureEvent] = []
        #: events that actually killed at least one rank
        self.injected_events: List[FailureEvent] = []
        self._process: Optional["SimProcess"] = None
        runtime.attach_failure_source()

    def start(self) -> "SimProcess":
        """Register the injector as a simulation process (before running)."""
        if self._process is not None:
            raise RuntimeError("failure injector already started")
        self._process = self.runtime.sim.process(self._run(), name="failure-injector")
        return self._process

    # -- internals -------------------------------------------------------------
    def _victims_of(self, node: int) -> List[int]:
        return [ctx.rank for ctx in self.runtime.contexts
                if ctx.node_id == node and not ctx.finished and not ctx.failed]

    def _run(self) -> Generator["Event", Any, None]:
        runtime = self.runtime
        sim = runtime.sim
        n_nodes = runtime.cluster.spec.n_nodes
        for event in self.model.iterate(self.horizon_s, n_nodes):
            delay = event.time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            if all(ctx.finished for ctx in runtime.contexts):
                return
            victims = self._victims_of(event.node)
            if not victims:
                # No live rank to kill, but the node is dead all the same:
                # an idle spare that dies must leave the pool instead of
                # being handed out as a healthy replacement later.
                self.manager.node_failed(event.node,
                                         disk_lost=event.destroys_disk)
                self.ignored_events.append(event)
                continue
            self.injected_events.append(event)
            self.manager.submit(event, victims)
            if not self.concurrent:
                # Serialised baseline: wait every recovery out before the
                # next event (the pre-manager PR 3 behaviour).
                yield self.manager.drained()
