"""Compute-node model.

The paper's testbed nodes are single Pentium 4 (2.0 GHz) machines with 512 MB
of physical memory.  For the checkpoint protocols the two properties that
matter are

* the *relative compute speed* (scales the duration of compute phases in the
  workload scripts), and
* the *memory footprint* available to the application process, because the
  duration of the BLCR "Checkpoint" stage is the process image size divided
  by the storage bandwidth (see Figure 9 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node.

    Parameters
    ----------
    cpu_ghz:
        Nominal clock speed; compute phases are expressed in "reference
        seconds" at 2.0 GHz and scaled by ``2.0 / cpu_ghz``.
    memory_bytes:
        Physical memory.  An application's resident set (and therefore its
        checkpoint image) can never exceed this.
    cores:
        Number of cores; the paper runs one MPI process per node, but the
        model allows packing several ranks per node (fat-node clusters, as in
        the NCCU-MPI related work).
    os_jitter_sigma:
        Log-normal sigma applied to compute phases to model OS noise.
    """

    cpu_ghz: float = 2.0
    memory_bytes: int = 512 * MB
    cores: int = 1
    os_jitter_sigma: float = 0.02

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.os_jitter_sigma < 0:
            raise ValueError("os_jitter_sigma must be non-negative")

    @property
    def speed_factor(self) -> float:
        """Multiplier applied to reference compute times (reference = 2.0 GHz)."""
        return 2.0 / self.cpu_ghz


@dataclass
class Node:
    """A compute node instance within a cluster.

    Tracks which ranks are placed on it and how much memory they consume, so
    that checkpoint-image sizes can be validated against physical memory.
    """

    node_id: int
    spec: NodeSpec = field(default_factory=NodeSpec)
    hostname: Optional[str] = None
    ranks: list[int] = field(default_factory=list)
    #: True once the node has crashed; a failed node hosts no new ranks until
    #: it reboots (in-place restart) and is never handed out as a spare
    failed: bool = False
    #: lifetime crash counter; a reboot scheduled before a *second* death can
    #: tell that its node died again in between (and must not resurrect it)
    death_count: int = 0
    _reserved_bytes: int = 0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.hostname is None:
            self.hostname = f"compute-{self.node_id:04d}"

    # -- placement ------------------------------------------------------
    def place_rank(self, rank: int) -> None:
        """Record that MPI ``rank`` runs on this node."""
        if rank in self.ranks:
            raise ValueError(f"rank {rank} already placed on node {self.node_id}")
        if len(self.ranks) >= self.spec.cores:
            raise ValueError(
                f"node {self.node_id} has {self.spec.cores} core(s); cannot place rank {rank}"
            )
        self.ranks.append(rank)

    def remove_rank(self, rank: int) -> None:
        """Remove a previously placed rank (e.g. after a failure)."""
        try:
            self.ranks.remove(rank)
        except ValueError as exc:
            raise ValueError(f"rank {rank} is not placed on node {self.node_id}") from exc

    # -- failure lifecycle ----------------------------------------------
    def mark_failed(self) -> None:
        """Record that this node crashed (its processes are gone)."""
        self.failed = True
        self.death_count += 1

    def mark_rebooted(self) -> None:
        """The node came back after an in-place reboot."""
        self.failed = False

    # -- memory ---------------------------------------------------------
    @property
    def free_memory(self) -> int:
        """Bytes of physical memory not yet reserved by application processes."""
        return self.spec.memory_bytes - self._reserved_bytes

    def reserve_memory(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of memory for an application process."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes > self.free_memory:
            raise MemoryError(
                f"node {self.node_id}: cannot reserve {nbytes} bytes "
                f"({self.free_memory} free of {self.spec.memory_bytes})"
            )
        self._reserved_bytes += nbytes

    def release_memory(self, nbytes: int) -> None:
        """Release a previous reservation."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes > self._reserved_bytes:
            raise ValueError("releasing more memory than reserved")
        self._reserved_bytes -= nbytes

    def compute_time(self, reference_seconds: float) -> float:
        """Wall time for a compute phase of ``reference_seconds`` at 2.0 GHz."""
        if reference_seconds < 0:
            raise ValueError("reference_seconds must be non-negative")
        return reference_seconds * self.spec.speed_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} ({self.hostname}) ranks={self.ranks}>"
