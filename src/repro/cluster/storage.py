"""Storage substrate: local disks and shared remote checkpoint servers.

Two configurations appear in the paper's evaluation:

* checkpoint images and message logs written to the **local IDE disk** of each
  node (Sections 5.1, 5.2), and
* checkpoint images written to **remote checkpoint servers over NFS**
  (Section 5.3), with 4 dedicated server nodes shared by all processes —
  this is where MPICH-VCL's and the group-based scheme's storage contention
  differ.

Both are modelled as bandwidth pipes with a per-operation seek/open overhead;
the remote servers additionally serialise concurrent writers and pay the
network transfer to reach the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, TYPE_CHECKING

from repro.sim.primitives import Event, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Network
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class StorageSpec:
    """Static description of one storage device/service.

    Parameters
    ----------
    write_bandwidth_bytes_per_s / read_bandwidth_bytes_per_s:
        Sustained sequential throughput.
    op_overhead_s:
        Fixed cost per write/read operation (open, seek, fsync).
    concurrency:
        Number of simultaneous streams served at full bandwidth; additional
        streams queue.  A local disk has concurrency 1; an NFS server can
        interleave a few clients.
    name:
        Human-readable label.
    """

    write_bandwidth_bytes_per_s: float = 35e6
    read_bandwidth_bytes_per_s: float = 40e6
    op_overhead_s: float = 8e-3
    concurrency: int = 1
    name: str = "disk"

    def __post_init__(self) -> None:
        if self.write_bandwidth_bytes_per_s <= 0 or self.read_bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        if self.op_overhead_s < 0:
            raise ValueError("op_overhead_s must be non-negative")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")

    def write_time(self, nbytes: int) -> float:
        """Uncontended time to write ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.op_overhead_s + nbytes / self.write_bandwidth_bytes_per_s

    def read_time(self, nbytes: int) -> float:
        """Uncontended time to read ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.op_overhead_s + nbytes / self.read_bandwidth_bytes_per_s


#: A circa-2003 local IDE disk, as found in the Gideon 300 nodes.
LOCAL_IDE_DISK = StorageSpec(
    write_bandwidth_bytes_per_s=35e6,
    read_bandwidth_bytes_per_s=40e6,
    op_overhead_s=8e-3,
    concurrency=1,
    name="local-ide",
)

#: A dedicated NFS checkpoint server (faster disks, but shared by many clients).
NFS_CHECKPOINT_SERVER = StorageSpec(
    write_bandwidth_bytes_per_s=50e6,
    read_bandwidth_bytes_per_s=55e6,
    op_overhead_s=12e-3,
    concurrency=2,
    name="nfs-server",
)


class StorageSystem:
    """Common interface of the storage back ends.

    ``write``/``read`` are coroutines: they yield simulation events and return
    the elapsed time for the operation.  ``written_bytes`` / ``read_bytes``
    track totals for the analysis layer.
    """

    def __init__(self) -> None:
        self.written_bytes = 0
        self.read_bytes = 0
        self.write_ops = 0
        self.read_ops = 0

    def write(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        raise NotImplementedError  # pragma: no cover - interface

    def read(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        raise NotImplementedError  # pragma: no cover - interface


class LocalDiskArray(StorageSystem):
    """One independent local disk per compute node."""

    def __init__(self, sim: "Simulator", n_nodes: int, spec: StorageSpec = LOCAL_IDE_DISK) -> None:
        super().__init__()
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.sim = sim
        self.n_nodes = n_nodes
        self.spec = spec
        self._disks: Dict[int, Resource] = {
            i: Resource(sim, capacity=spec.concurrency, name=f"disk:{i}") for i in range(n_nodes)
        }

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def write(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Write ``nbytes`` to the local disk of ``node``."""
        self._check(node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        req = self._disks[node].request()
        try:
            yield req
            yield self.sim.timeout(self.spec.write_time(nbytes))
        finally:
            self._disks[node].release(req)
        self.written_bytes += nbytes
        self.write_ops += 1
        return self.sim.now - start

    def read(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Read ``nbytes`` from the local disk of ``node``."""
        self._check(node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        req = self._disks[node].request()
        try:
            yield req
            yield self.sim.timeout(self.spec.read_time(nbytes))
        finally:
            self._disks[node].release(req)
        self.read_bytes += nbytes
        self.read_ops += 1
        return self.sim.now - start

    def describe(self) -> str:
        return f"local disks ({self.spec.name}) on {self.n_nodes} nodes"


class RemoteStorageServers(StorageSystem):
    """A small pool of dedicated checkpoint servers reached over the network.

    Clients are assigned to servers round-robin by node id (matching the
    static assignment used in the paper's MPICH-VCL setup with 4 isolated
    server nodes).  A write pays the network transfer from the client node to
    the server *and* the server disk write, and contends with every other
    client of the same server.
    """

    #: Default ingestion bandwidth of one checkpoint server (bytes/s).  The
    #: paper's dedicated servers absorb image bursts much faster than a plain
    #: Fast-Ethernet client link would suggest (async NFS write-back plus a
    #: faster uplink on the server side), so the default models a GigE-class
    #: server link rather than the clients' 100 Mbit NICs.
    DEFAULT_SERVER_BANDWIDTH = 60e6

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        n_servers: int = 4,
        spec: StorageSpec = NFS_CHECKPOINT_SERVER,
        server_network_bandwidth: Optional[float] = None,
    ) -> None:
        super().__init__()
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        self.sim = sim
        self.network = network
        self.n_servers = n_servers
        self.spec = spec
        #: bandwidth of the server's network link
        self.server_network_bandwidth = (
            server_network_bandwidth
            if server_network_bandwidth is not None
            else self.DEFAULT_SERVER_BANDWIDTH
        )
        if self.server_network_bandwidth <= 0:
            raise ValueError("server_network_bandwidth must be positive")
        self._disks: List[Resource] = [
            Resource(sim, capacity=spec.concurrency, name=f"ckpt-server-disk:{i}")
            for i in range(n_servers)
        ]
        self._links: List[Resource] = [
            Resource(sim, capacity=1, name=f"ckpt-server-link:{i}") for i in range(n_servers)
        ]
        self.per_server_bytes: List[int] = [0] * n_servers

    def server_for(self, node: int) -> int:
        """The server a given client node is assigned to (round-robin)."""
        if node < 0:
            raise ValueError("node must be non-negative")
        return node % self.n_servers

    def _transfer(self, server: int, nbytes: int) -> Generator[Event, None, None]:
        link = self._links[server]
        # Grant wait inside try/finally: an interrupted process (failure
        # injection) cancels its queued request instead of leaking the link.
        req = link.request()
        try:
            yield req
            yield self.sim.timeout(
                self.network.spec.latency_s + nbytes / self.server_network_bandwidth
            )
        finally:
            link.release(req)

    def write(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Ship ``nbytes`` from ``node`` to its checkpoint server and persist it."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        server = self.server_for(node)
        yield from self._transfer(server, nbytes)
        req = self._disks[server].request()
        try:
            yield req
            yield self.sim.timeout(self.spec.write_time(nbytes))
        finally:
            self._disks[server].release(req)
        self.written_bytes += nbytes
        self.write_ops += 1
        self.per_server_bytes[server] += nbytes
        return self.sim.now - start

    def read(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Fetch ``nbytes`` for ``node`` back from its checkpoint server."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        server = self.server_for(node)
        req = self._disks[server].request()
        try:
            yield req
            yield self.sim.timeout(self.spec.read_time(nbytes))
        finally:
            self._disks[server].release(req)
        yield from self._transfer(server, nbytes)
        self.read_bytes += nbytes
        self.read_ops += 1
        return self.sim.now - start

    def describe(self) -> str:
        return f"{self.n_servers} remote checkpoint servers ({self.spec.name}) over NFS"
