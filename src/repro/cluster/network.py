"""Switched-network model with per-NIC serialisation.

The Gideon 300 cluster uses switched Fast Ethernet.  For the protocol
measurements the relevant effects are:

* a fixed per-message latency (software stack + switch),
* a bandwidth-proportional transfer time,
* serialisation at each node's NIC: a node sending (or receiving) several
  messages at once shares its link, which is what makes "clearing in-transit
  messages" and "replaying logs to many peers" expensive at scale.

The model exposes a single coroutine, :meth:`Network.transfer`, which yields
simulation events until the message has been fully delivered, and a cheaper
closed-form estimate, :meth:`Network.transfer_time`, used by analytic helper
code and for piggyback-only control messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, TYPE_CHECKING

from repro.sim.primitives import Event, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect.

    Parameters
    ----------
    latency_s:
        One-way latency per message (seconds).
    bandwidth_bytes_per_s:
        Point-to-point bandwidth of a single NIC/link.
    per_message_overhead_s:
        Fixed CPU cost charged to the sender for every message (protocol
        stack, memory copies).  This is where message-logging overhead adds
        its extra copy cost.
    switch_capacity:
        Number of simultaneous transfers the switch fabric supports before
        backpressure; ``None`` means non-blocking fabric (only NICs contend).
    name:
        Human-readable label.
    """

    latency_s: float = 100e-6
    bandwidth_bytes_per_s: float = 11.5e6
    per_message_overhead_s: float = 15e-6
    switch_capacity: Optional[int] = None
    name: str = "network"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")
        if self.per_message_overhead_s < 0:
            raise ValueError("per_message_overhead_s must be non-negative")
        if self.switch_capacity is not None and self.switch_capacity < 1:
            raise ValueError("switch_capacity must be >= 1 or None")

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through one link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.bandwidth_bytes_per_s


#: 100 Mbit/s Fast Ethernet as used by the Gideon 300 cluster in the paper.
FAST_ETHERNET = NetworkSpec(
    latency_s=120e-6,
    bandwidth_bytes_per_s=11.5e6,
    per_message_overhead_s=20e-6,
    name="fast-ethernet",
)

#: Gigabit Ethernet — used for the "faster network, larger groups" discussion.
GIGABIT_ETHERNET = NetworkSpec(
    latency_s=45e-6,
    bandwidth_bytes_per_s=112e6,
    per_message_overhead_s=10e-6,
    name="gigabit-ethernet",
)

#: Single-data-rate InfiniBand, a stand-in for "high speed networks".
INFINIBAND_SDR = NetworkSpec(
    latency_s=5e-6,
    bandwidth_bytes_per_s=900e6,
    per_message_overhead_s=2e-6,
    name="infiniband-sdr",
)


class Network:
    """A switched network connecting the nodes of a :class:`~repro.cluster.topology.Cluster`.

    Each node gets an independent transmit NIC resource and receive NIC
    resource; a message holds the sender's TX NIC for its serialisation time
    and the receiver's RX NIC for its serialisation time, separated by the
    propagation latency.
    """

    def __init__(self, sim: "Simulator", spec: NetworkSpec, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        self._tx: Dict[int, Resource] = {
            i: Resource(sim, capacity=1, name=f"tx:{i}") for i in range(n_nodes)
        }
        self._rx: Dict[int, Resource] = {
            i: Resource(sim, capacity=1, name=f"rx:{i}") for i in range(n_nodes)
        }
        self._fabric: Optional[Resource] = None
        if spec.switch_capacity is not None:
            self._fabric = Resource(sim, capacity=spec.switch_capacity, name="fabric")
        # accounting
        self.total_bytes = 0
        self.total_messages = 0

    # -- closed-form estimate -------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Uncontended end-to-end time for a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (
            self.spec.per_message_overhead_s
            + self.spec.latency_s
            + self.spec.serialization_time(nbytes)
        )

    # -- simulated transfer ----------------------------------------------
    def tx(self, src_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Sender-side portion of a transfer: per-message overhead + TX NIC hold.

        This is the part of a blocking send the *sender* is occupied for.
        Returns the elapsed sender time.
        """
        self._check_node(src_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.total_bytes += nbytes
        self.total_messages += 1
        start = self.sim.now
        yield self.sim.timeout(self.spec.per_message_overhead_s)
        ser = self.spec.serialization_time(nbytes)
        tx_req = self._tx[src_node].request()
        yield tx_req
        try:
            if self._fabric is not None:
                fb_req = self._fabric.request()
                yield fb_req
            else:
                fb_req = None
            try:
                yield self.sim.timeout(ser)
            finally:
                if fb_req is not None:
                    self._fabric.release(fb_req)
        finally:
            self._tx[src_node].release(tx_req)
        return self.sim.now - start

    def rx_path(self, dst_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Network-and-receiver portion of a transfer: latency + RX NIC serialisation."""
        self._check_node(dst_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = self.sim.now
        yield self.sim.timeout(self.spec.latency_s)
        rx_req = self._rx[dst_node].request()
        yield rx_req
        try:
            yield self.sim.timeout(self.spec.serialization_time(nbytes))
        finally:
            self._rx[dst_node].release(rx_req)
        return self.sim.now - start

    def transfer(
        self, src_node: int, dst_node: int, nbytes: int
    ) -> Generator[Event, None, float]:
        """Simulate moving ``nbytes`` from ``src_node`` to ``dst_node``.

        Yields simulation events; returns the completion time.  Local (same
        node) transfers only pay the per-message overhead.
        """
        self._check_node(src_node)
        self._check_node(dst_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")

        if src_node == dst_node:
            self.total_bytes += nbytes
            self.total_messages += 1
            yield self.sim.timeout(self.spec.per_message_overhead_s)
            return self.sim.now

        yield from self.tx(src_node, nbytes)
        yield from self.rx_path(dst_node, nbytes)
        return self.sim.now

    # -- introspection -----------------------------------------------------
    def tx_queue_length(self, node: int) -> int:
        """Messages currently waiting for the node's transmit NIC."""
        self._check_node(node)
        return self._tx[node].queue_length

    def rx_queue_length(self, node: int) -> int:
        """Messages currently waiting for the node's receive NIC."""
        self._check_node(node)
        return self._rx[node].queue_length

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network {self.spec.name} nodes={self.n_nodes} msgs={self.total_messages}>"
