"""Switched-network model with per-NIC serialisation.

The Gideon 300 cluster uses switched Fast Ethernet.  For the protocol
measurements the relevant effects are:

* a fixed per-message latency (software stack + switch),
* a bandwidth-proportional transfer time,
* serialisation at each node's NIC: a node sending (or receiving) several
  messages at once shares its link, which is what makes "clearing in-transit
  messages" and "replaying logs to many peers" expensive at scale.

The model exposes the coroutine :meth:`Network.transfer` (and its halves
:meth:`Network.tx` / :meth:`Network.rx_path`), which yield simulation events
until the message has been fully delivered, and a cheaper closed-form
estimate, :meth:`Network.transfer_time`, used by analytic helper code.

Closed-form fast path
---------------------
When a NIC is *provably* uncontended, the multi-yield coroutine model is
equivalent to a single timeout: overhead + serialisation on the sender side,
latency + serialisation on the receiver side.  :meth:`try_reserve_tx` /
:meth:`try_reserve_rx` check that proof obligation and, when it holds,
reserve the NIC via :meth:`~repro.sim.primitives.Resource.acquire_nowait`
so that any later (coroutine) transfer queues exactly where it would have
queued against the coroutine model.

The proof needs more than "the NIC resource is idle": a transfer that has
been *initiated* but has not yet reached the NIC (it is still in its
overhead or latency phase) would contend later.  The ``_tx_inflight`` /
``_rx_inflight`` counters track initiated-but-unfinished transfers per NIC;
the fast path requires the counter to be zero.  Because per-message latency
and overhead are network constants, any transfer initiated *after* a fast
reservation reaches the NIC no earlier than the reservation's own NIC phase,
so the early hold can never steal the NIC from a transfer that would have
won it under the coroutine model (and the fabric must be absent — with a
capacity-limited switch the whole-window hold could over-serialise it, so a
configured ``switch_capacity`` always takes the coroutine model).

Setting the environment variable ``REPRO_SIM_FASTPATH=0`` (or constructing
``Network(..., fast_path=False)``) forces the full coroutine model; the
determinism-parity tests run both and assert bit-identical results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.primitives import Event, Resource, ResourceHold, ResourceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import NodeTopology
    from repro.sim.engine import Simulator

#: environment switch forcing the full coroutine model (determinism parity)
FAST_PATH_ENV = "REPRO_SIM_FASTPATH"


def fast_path_default() -> bool:
    """Whether new networks use the closed-form fast path (env-controlled)."""
    return os.environ.get(FAST_PATH_ENV, "1") != "0"


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect.

    Parameters
    ----------
    latency_s:
        One-way latency per message (seconds).
    bandwidth_bytes_per_s:
        Point-to-point bandwidth of a single NIC/link.
    per_message_overhead_s:
        Fixed CPU cost charged to the sender for every message (protocol
        stack, memory copies).  This is where message-logging overhead adds
        its extra copy cost.
    switch_capacity:
        Number of simultaneous transfers the switch fabric supports before
        backpressure; ``None`` means non-blocking fabric (only NICs contend).
    name:
        Human-readable label.
    """

    latency_s: float = 100e-6
    bandwidth_bytes_per_s: float = 11.5e6
    per_message_overhead_s: float = 15e-6
    switch_capacity: Optional[int] = None
    name: str = "network"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")
        if self.per_message_overhead_s < 0:
            raise ValueError("per_message_overhead_s must be non-negative")
        if self.switch_capacity is not None and self.switch_capacity < 1:
            raise ValueError("switch_capacity must be >= 1 or None")

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through one link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.bandwidth_bytes_per_s


#: 100 Mbit/s Fast Ethernet as used by the Gideon 300 cluster in the paper.
FAST_ETHERNET = NetworkSpec(
    latency_s=120e-6,
    bandwidth_bytes_per_s=11.5e6,
    per_message_overhead_s=20e-6,
    name="fast-ethernet",
)

#: Gigabit Ethernet — used for the "faster network, larger groups" discussion.
GIGABIT_ETHERNET = NetworkSpec(
    latency_s=45e-6,
    bandwidth_bytes_per_s=112e6,
    per_message_overhead_s=10e-6,
    name="gigabit-ethernet",
)

#: Single-data-rate InfiniBand, a stand-in for "high speed networks".
INFINIBAND_SDR = NetworkSpec(
    latency_s=5e-6,
    bandwidth_bytes_per_s=900e6,
    per_message_overhead_s=2e-6,
    name="infiniband-sdr",
)


class _TxChain:
    """Callback-chain state machine for a background sender-side transfer.

    Mirrors :meth:`Network._tx_body` event for event (overhead timeout, NIC
    grant, optional fabric grant, serialisation timeout, releases in the same
    order) but without a :class:`~repro.sim.engine.SimProcess`: no generator
    frames, no bootstrap, and no process-completion calendar event.
    """

    __slots__ = ("net", "src", "ser", "req", "fb")

    def __init__(self, net: "Network", src_node: int, nbytes: int) -> None:
        self.net = net
        self.src = src_node
        self.ser = net.spec.serialization_time(nbytes)
        self.req = None
        self.fb = None
        overhead = net.sim.timeout(net.spec.per_message_overhead_s)
        overhead.callbacks.append(self._on_overhead)

    def _on_overhead(self, _ev: Event) -> None:
        net = self.net
        net._materialize_tx_hold(self.src)
        if net._fabric is None:
            req = net._tx[self.src].acquire_nowait()
            if req is not None:
                # NIC free right now: the delay-zero grant event of the
                # coroutine model is provably immediate — skip it.
                self.req = req
                net.sim.stats.events_elided += 1
                done = net.sim.timeout(self.ser)
                done.callbacks.append(self._on_done)
                return
        self.req = net._tx[self.src].request()
        self.req.callbacks.append(self._on_grant)

    def _on_grant(self, _ev: Event) -> None:
        net = self.net
        if net._fabric is not None:
            self.fb = net._fabric.request()
            self.fb.callbacks.append(self._on_fabric)
        else:
            done = net.sim.timeout(self.ser)
            done.callbacks.append(self._on_done)

    def _on_fabric(self, _ev: Event) -> None:
        done = self.net.sim.timeout(self.ser)
        done.callbacks.append(self._on_done)

    def _on_done(self, _ev: Event) -> None:
        net = self.net
        if self.fb is not None:
            net._fabric.release(self.fb)
        net._tx[self.src].release(self.req)
        net._tx_inflight[self.src] -= 1


class _RxChain:
    """Callback-chain state machine for a background receiver-side transfer.

    Mirrors :meth:`Network._rx_body` (latency timeout, RX NIC grant,
    serialisation timeout, release) without a process; invokes
    ``on_complete(arg)`` at the exact delivery-completion instant.
    """

    __slots__ = ("net", "dst", "ser", "req", "on_complete", "arg")

    def __init__(self, net: "Network", dst_node: int, nbytes: int,
                 on_complete, arg) -> None:
        self.net = net
        self.dst = dst_node
        self.ser = net.spec.serialization_time(nbytes)
        self.req = None
        self.on_complete = on_complete
        self.arg = arg
        latency = net.sim.timeout(net.spec.latency_s)
        latency.callbacks.append(self._on_arrival)

    def _on_arrival(self, _ev: Event) -> None:
        net = self.net
        req = net._rx[self.dst].acquire_nowait()
        if req is not None:
            # NIC free at arrival: skip the delay-zero grant event.
            self.req = req
            net.sim.stats.events_elided += 1
            done = net.sim.timeout(self.ser)
            done.callbacks.append(self._on_done)
            return
        self.req = net._rx[self.dst].request()
        self.req.callbacks.append(self._on_grant)

    def _on_grant(self, _ev: Event) -> None:
        done = self.net.sim.timeout(self.ser)
        done.callbacks.append(self._on_done)

    def _on_done(self, _ev: Event) -> None:
        net = self.net
        net._rx[self.dst].release(self.req)
        net._rx_inflight[self.dst] -= 1
        self.on_complete(self.arg)


class Network:
    """A switched network connecting the nodes of a :class:`~repro.cluster.topology.Cluster`.

    Each node gets an independent transmit NIC resource and receive NIC
    resource; a message holds the sender's TX NIC for its serialisation time
    and the receiver's RX NIC for its serialisation time, separated by the
    propagation latency.
    """

    def __init__(self, sim: "Simulator", spec: NetworkSpec, n_nodes: int,
                 fast_path: Optional[bool] = None,
                 topology: Optional["NodeTopology"] = None) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        #: physical switch layout (informational: drives *placement* choices
        #: like restart-on-spare, not link timing — see NodeTopology)
        self.topology = topology
        #: closed-form fast path enabled (see module docstring)
        self.fast_path = fast_path_default() if fast_path is None else fast_path
        # hot-path constants hoisted out of the (frozen) spec
        self._overhead_s = spec.per_message_overhead_s
        self._latency_s = spec.latency_s
        self._bandwidth = spec.bandwidth_bytes_per_s
        self._tx: List[Resource] = [
            Resource(sim, capacity=1, name=f"tx:{i}") for i in range(n_nodes)
        ]
        self._rx: List[Resource] = [
            Resource(sim, capacity=1, name=f"rx:{i}") for i in range(n_nodes)
        ]
        #: transfers initiated but not yet finished, per NIC (includes the
        #: overhead/latency phase during which the NIC resource looks idle)
        self._tx_inflight: List[int] = [0] * n_nodes
        self._rx_inflight: List[int] = [0] * n_nodes
        #: lazy analytic TX hold per NIC: ``(until, reservation)`` or None.
        #: Created by :meth:`try_hold_tx`; expired lazily by the next fast
        #: check, or materialised into a release event only when a coroutine
        #: transfer actually contends (see :meth:`_materialize_tx_hold`).
        self._tx_hold: List[Optional[Tuple[float, ResourceHold]]] = [None] * n_nodes
        self._fabric: Optional[Resource] = None
        if spec.switch_capacity is not None:
            self._fabric = Resource(sim, capacity=spec.switch_capacity, name="fabric")
        # accounting
        self.total_bytes = 0
        self.total_messages = 0

    # -- closed-form estimate -------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Uncontended end-to-end time for a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (
            self.spec.per_message_overhead_s
            + self.spec.latency_s
            + self.spec.serialization_time(nbytes)
        )

    # -- closed-form fast path -------------------------------------------
    def try_reserve_tx(self, src_node: int, nbytes: int) -> Optional[Tuple[Event, ResourceHold]]:
        """Closed-form sender path when the TX NIC is provably uncontended.

        Returns ``(done, reservation)`` — ``done`` is one calendar event
        firing at the exact instant the coroutine model would finish
        (``(now + overhead) + serialisation``, preserving the coroutine's
        floating-point association); the caller waits on it and then calls
        :meth:`finish_tx` — or ``None`` when the coroutine model is required.
        Performs the same byte/message accounting as :meth:`tx`.
        """
        self._expire_tx_hold(src_node)
        if (not self.fast_path or self._fabric is not None
                or self._tx_inflight[src_node]):
            return None
        req = self._tx[src_node].acquire_nowait()
        if req is None:
            return None
        self._tx_inflight[src_node] += 1
        self.total_bytes += nbytes
        self.total_messages += 1
        sim = self.sim
        sim.stats.fastpath_tx += 1
        end = (sim.now + self._overhead_s) + nbytes / self._bandwidth
        return sim.fire_at(end), req

    def finish_tx(self, src_node: int, reservation: ResourceHold) -> None:
        """Release a :meth:`try_reserve_tx` reservation (at its computed end time)."""
        self._tx_inflight[src_node] -= 1
        self._tx[src_node].release(reservation)

    def try_hold_tx(self, src_node: int, nbytes: int) -> bool:
        """Event-free sender path for *background* transfers.

        Like :meth:`try_reserve_tx`, but nobody waits for the sender side of
        a non-blocking send, so no completion event is scheduled at all: the
        NIC is held analytically until ``(now + overhead) + serialisation``
        and the hold is released lazily — by the next fast-path check once it
        has expired, or materialised into exactly one release event the
        moment a coroutine transfer contends for the NIC.  Replaces the whole
        spawned sender coroutine (overhead timeout, grant, serialisation
        timeout, process completion: 4 calendar events) with zero.
        """
        self._expire_tx_hold(src_node)
        if (not self.fast_path or self._fabric is not None
                or self._tx_inflight[src_node]):
            return False
        req = self._tx[src_node].acquire_nowait()
        if req is None:
            return False
        self._tx_inflight[src_node] += 1
        self.total_bytes += nbytes
        self.total_messages += 1
        sim = self.sim
        sim.stats.fastpath_tx += 1
        sim.stats.events_elided += 4
        end = (sim.now + self._overhead_s) + nbytes / self._bandwidth
        self._tx_hold[src_node] = (end, req)
        return True

    def start_tx(self, src_node: int, nbytes: int) -> None:
        """Background sender-side path as a callback chain (no process).

        Used when the analytic hold of :meth:`try_hold_tx` is not provable
        (NIC contended or another transfer in flight): the full event
        sequence of the coroutine model runs, driven by callbacks instead of
        a spawned process — eliding exactly the process-completion event.
        """
        self._tx_inflight[src_node] += 1
        self.total_bytes += nbytes
        self.total_messages += 1
        self.sim.stats.events_elided += 1
        _TxChain(self, src_node, nbytes)

    def start_rx(self, dst_node: int, nbytes: int, on_complete, arg) -> None:
        """Background receiver-side path as a callback chain (no process).

        Runs the full latency + RX NIC event sequence of the coroutine model
        and calls ``on_complete(arg)`` at the delivery-completion instant —
        eliding exactly the process-completion event of the spawned model.
        """
        self._rx_inflight[dst_node] += 1
        self.sim.stats.events_elided += 1
        _RxChain(self, dst_node, nbytes, on_complete, arg)

    def _expire_tx_hold(self, src_node: int) -> None:
        """Release an analytic TX hold whose end time has passed."""
        hold = self._tx_hold[src_node]
        if hold is not None and hold[0] <= self.sim.now:
            self._tx_hold[src_node] = None
            self.finish_tx(src_node, hold[1])

    def _materialize_tx_hold(self, src_node: int) -> None:
        """Turn a live analytic TX hold into a real release event.

        Called when a coroutine transfer is about to request the NIC: the
        contender must queue until exactly the hold's end time, so the
        deferred release is now scheduled (one event — the same release the
        coroutine model would have performed inside its serialisation
        timeout).
        """
        hold = self._tx_hold[src_node]
        if hold is None:
            return
        until, req = hold
        self._tx_hold[src_node] = None
        if until <= self.sim.now:
            self.finish_tx(src_node, req)
            return
        self.sim.stats.events_elided -= 1
        done = self.sim.fire_at(until)
        done.callbacks.append(lambda _ev: self.finish_tx(src_node, req))

    def try_reserve_rx(self, dst_node: int, nbytes: int) -> Optional[Tuple[Event, ResourceHold]]:
        """Closed-form receiver path when the RX NIC is provably uncontended.

        Returns ``(done, reservation)`` — ``done`` fires at the exact instant
        the coroutine model would complete the latency + RX-serialisation
        path; the caller calls :meth:`finish_rx` from it.  ``None`` under
        (potential) contention.
        """
        if not self.fast_path or self._rx_inflight[dst_node]:
            return None
        req = self._rx[dst_node].acquire_nowait()
        if req is None:
            return None
        self._rx_inflight[dst_node] += 1
        sim = self.sim
        sim.stats.fastpath_rx += 1
        end = (sim.now + self._latency_s) + nbytes / self._bandwidth
        return sim.fire_at(end), req

    def finish_rx(self, dst_node: int, reservation: ResourceHold) -> None:
        """Release a :meth:`try_reserve_rx` reservation (at its computed end time)."""
        self._rx_inflight[dst_node] -= 1
        self._rx[dst_node].release(reservation)

    # -- inflight bookkeeping for spawned coroutines -----------------------
    def begin_tx(self, src_node: int) -> None:
        """Count a sender-side transfer as initiated (spawned-coroutine path).

        A generator's body only runs once the spawned process is first
        stepped; counting at spawn time closes the window in which a fast
        reservation could sneak past a transfer that is already on its way.
        Pair with :meth:`tx_counted`.
        """
        self._tx_inflight[src_node] += 1

    def begin_rx(self, dst_node: int) -> None:
        """Count a receiver-side transfer as initiated (see :meth:`begin_tx`)."""
        self._rx_inflight[dst_node] += 1

    def tx_counted(self, src_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Sender-side coroutine for a transfer already counted via :meth:`begin_tx`."""
        try:
            result = yield from self._tx_body(src_node, nbytes)
        finally:
            self._tx_inflight[src_node] -= 1
        return result

    def rx_counted(self, dst_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Receiver-side coroutine for a transfer already counted via :meth:`begin_rx`."""
        try:
            result = yield from self._rx_body(dst_node, nbytes)
        finally:
            self._rx_inflight[dst_node] -= 1
        return result

    # -- simulated transfer ----------------------------------------------
    def tx(self, src_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Sender-side portion of a transfer: per-message overhead + TX NIC hold.

        This is the part of a blocking send the *sender* is occupied for.
        Returns the elapsed sender time.
        """
        self._check_node(src_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._tx_inflight[src_node] += 1
        try:
            result = yield from self._tx_body(src_node, nbytes)
        finally:
            self._tx_inflight[src_node] -= 1
        return result

    def _tx_body(self, src_node: int, nbytes: int) -> Generator[Event, None, float]:
        self.total_bytes += nbytes
        self.total_messages += 1
        start = self.sim.now
        yield self.sim.timeout(self.spec.per_message_overhead_s)
        ser = self.spec.serialization_time(nbytes)
        self._materialize_tx_hold(src_node)
        if self.fast_path and self._fabric is None:
            tx_req = self._tx[src_node].acquire_nowait()
            if tx_req is not None:
                # NIC free right now: the delay-zero grant is provably
                # immediate — hold the slot and skip the grant event.
                self.sim.stats.events_elided += 1
                try:
                    yield self.sim.timeout(ser)
                finally:
                    self._tx[src_node].release(tx_req)
                return self.sim.now - start
        # The grant waits sit inside try/finally so that an interrupted
        # process (live failure injection kills ranks mid-transfer) cancels
        # its queued request instead of leaking a NIC slot forever.
        tx_req = self._tx[src_node].request()
        try:
            yield tx_req
            if self._fabric is not None:
                fb_req = self._fabric.request()
                try:
                    yield fb_req
                    yield self.sim.timeout(ser)
                finally:
                    self._fabric.release(fb_req)
            else:
                yield self.sim.timeout(ser)
        finally:
            self._tx[src_node].release(tx_req)
        return self.sim.now - start

    def rx_path(self, dst_node: int, nbytes: int) -> Generator[Event, None, float]:
        """Network-and-receiver portion of a transfer: latency + RX NIC serialisation."""
        self._check_node(dst_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._rx_inflight[dst_node] += 1
        try:
            result = yield from self._rx_body(dst_node, nbytes)
        finally:
            self._rx_inflight[dst_node] -= 1
        return result

    def _rx_body(self, dst_node: int, nbytes: int) -> Generator[Event, None, float]:
        start = self.sim.now
        yield self.sim.timeout(self.spec.latency_s)
        if self.fast_path:
            rx_req = self._rx[dst_node].acquire_nowait()
            if rx_req is not None:
                # NIC free at arrival: skip the delay-zero grant event.
                self.sim.stats.events_elided += 1
                try:
                    yield self.sim.timeout(self.spec.serialization_time(nbytes))
                finally:
                    self._rx[dst_node].release(rx_req)
                return self.sim.now - start
        rx_req = self._rx[dst_node].request()
        try:
            yield rx_req
            yield self.sim.timeout(self.spec.serialization_time(nbytes))
        finally:
            self._rx[dst_node].release(rx_req)
        return self.sim.now - start

    def transfer(
        self, src_node: int, dst_node: int, nbytes: int
    ) -> Generator[Event, None, float]:
        """Simulate moving ``nbytes`` from ``src_node`` to ``dst_node``.

        Yields simulation events; returns the completion time.  Local (same
        node) transfers only pay the per-message overhead.  Each half takes
        the closed-form fast path when its NIC is provably uncontended
        (one timeout event instead of the multi-yield coroutine); the halves
        are collapsed independently because the receiver NIC can only be
        judged at the moment the receive leg starts.
        """
        self._check_node(src_node)
        self._check_node(dst_node)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")

        if src_node == dst_node:
            self.total_bytes += nbytes
            self.total_messages += 1
            yield self.sim.timeout(self.spec.per_message_overhead_s)
            return self.sim.now

        stats = self.sim.stats
        fast_tx = self.try_reserve_tx(src_node, nbytes)
        if fast_tx is not None:
            done, req = fast_tx
            stats.events_elided += 2
            try:
                yield done
            finally:
                # finally: an interrupted caller (an aborted recovery's image
                # fetch or replay) must release the NIC reservation, exactly
                # like the coroutine model's try/finally does.
                self.finish_tx(src_node, req)
        else:
            yield from self.tx(src_node, nbytes)
        fast_rx = self.try_reserve_rx(dst_node, nbytes)
        if fast_rx is not None:
            done, req = fast_rx
            stats.events_elided += 2
            try:
                yield done
            finally:
                self.finish_rx(dst_node, req)
        else:
            yield from self.rx_path(dst_node, nbytes)
        return self.sim.now

    # -- introspection -----------------------------------------------------
    def same_switch(self, a: int, b: int) -> bool:
        """Whether two nodes share an edge switch (True without a topology).

        A cluster without an attached :class:`NodeTopology` behaves as one
        flat switch — every pair is local, which is also the conservative
        answer for spare-placement preferences.
        """
        self._check_node(a)
        self._check_node(b)
        if self.topology is None:
            return True
        return self.topology.same_switch(a, b)

    def tx_queue_length(self, node: int) -> int:
        """Messages currently waiting for the node's transmit NIC."""
        self._check_node(node)
        return self._tx[node].queue_length

    def rx_queue_length(self, node: int) -> int:
        """Messages currently waiting for the node's receive NIC."""
        self._check_node(node)
        return self._rx[node].queue_length

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network {self.spec.name} nodes={self.n_nodes} msgs={self.total_messages}>"
