"""Cluster assembly: nodes + network + storage + process placement.

:class:`ClusterSpec` is the declarative description (how many nodes, which
network, which storage layout); :class:`Cluster` is the instantiated runtime
object bound to a simulator.  The constant :data:`GIDEON_300` reproduces the
paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.cluster.network import FAST_ETHERNET, Network, NetworkSpec
from repro.cluster.node import Node, NodeSpec
from repro.cluster.storage import (
    LOCAL_IDE_DISK,
    NFS_CHECKPOINT_SERVER,
    LocalDiskArray,
    RemoteStorageServers,
    StorageSpec,
    StorageSystem,
)
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.policy import StoragePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


#: default edge-switch radix (nodes per top-of-rack switch)
DEFAULT_NODES_PER_SWITCH = 32


@dataclass(frozen=True)
class NodeTopology:
    """Physical placement of nodes on edge switches.

    The cluster is modelled as ``ceil(n_nodes / nodes_per_switch)`` edge
    switches connected by a non-blocking core (the paper's Gideon 300 is
    Fast-Ethernet edge switches under a core switch).  The topology does not
    change link timing — the :class:`~repro.cluster.network.NetworkSpec`
    already models the NIC/link — but it drives *placement* decisions:
    restart-on-spare prefers a spare on the victim's own switch so replay and
    post-recovery traffic stay within the rack.
    """

    n_nodes: int
    nodes_per_switch: int = DEFAULT_NODES_PER_SWITCH

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")

    @property
    def n_switches(self) -> int:
        """Number of edge switches."""
        return -(-self.n_nodes // self.nodes_per_switch)

    def switch_of(self, node: int) -> int:
        """Edge switch hosting ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        return node // self.nodes_per_switch

    def same_switch(self, a: int, b: int) -> bool:
        """True when both nodes hang off the same edge switch."""
        return self.switch_of(a) == self.switch_of(b)

    def switch_nodes(self, switch: int) -> range:
        """Node ids on ``switch``."""
        if not 0 <= switch < self.n_switches:
            raise ValueError(f"switch {switch} out of range [0, {self.n_switches})")
        lo = switch * self.nodes_per_switch
        return range(lo, min(lo + self.nodes_per_switch, self.n_nodes))


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a cluster configuration.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes.
    node:
        Per-node hardware description.
    network:
        Interconnect description.
    local_storage:
        Spec of each node's local disk.
    checkpoint_storage:
        ``"local"`` to store checkpoint images/logs on the local disk (paper
        sections 5.1/5.2) or ``"remote"`` to ship them to shared checkpoint
        servers (section 5.3).
    n_checkpoint_servers:
        Number of dedicated servers when ``checkpoint_storage == "remote"``.
    remote_storage:
        Spec of each remote checkpoint server.
    nodes_per_switch:
        Edge-switch radix for the node topology (drives spare placement).
    storage_policy:
        Optional multi-level checkpoint-storage policy (L1 local disk,
        L2 topology-aware partner replica, L3 remote file system — see
        :class:`repro.storage.policy.StoragePolicy`).  None keeps the
        single-tier behaviour selected by ``checkpoint_storage``,
        bit-identical to the pre-hierarchy model.
    name:
        Label used in reports.
    """

    n_nodes: int = 128
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = FAST_ETHERNET
    local_storage: StorageSpec = LOCAL_IDE_DISK
    checkpoint_storage: str = "local"
    n_checkpoint_servers: int = 4
    remote_storage: StorageSpec = NFS_CHECKPOINT_SERVER
    nodes_per_switch: int = DEFAULT_NODES_PER_SWITCH
    storage_policy: Optional[StoragePolicy] = None
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.checkpoint_storage not in ("local", "remote"):
            raise ValueError("checkpoint_storage must be 'local' or 'remote'")
        if self.n_checkpoint_servers < 1:
            raise ValueError("n_checkpoint_servers must be >= 1")
        if self.nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """A copy of this spec with a different node count."""
        return replace(self, n_nodes=n_nodes)

    def with_remote_checkpointing(self, n_servers: Optional[int] = None) -> "ClusterSpec":
        """A copy of this spec storing checkpoints on remote servers."""
        return replace(
            self,
            checkpoint_storage="remote",
            n_checkpoint_servers=n_servers if n_servers is not None else self.n_checkpoint_servers,
        )

    def with_storage_policy(self, policy: Optional[StoragePolicy]) -> "ClusterSpec":
        """A copy of this spec using a multi-level checkpoint-storage policy."""
        return replace(self, storage_policy=policy)


#: The HKU Gideon 300 cluster as described in Section 5 of the paper:
#: Pentium 4 2.0 GHz nodes, 512 MB RAM, Fast Ethernet, local IDE disks.
GIDEON_300 = ClusterSpec(
    n_nodes=128,
    node=NodeSpec(cpu_ghz=2.0, memory_bytes=512 * 1024 * 1024, cores=1),
    network=FAST_ETHERNET,
    local_storage=LOCAL_IDE_DISK,
    checkpoint_storage="local",
    name="gideon-300",
)


class Cluster:
    """An instantiated cluster bound to a simulator.

    Provides rank→node placement (round-robin over nodes, one rank per core)
    and owns the network, the local-disk array, and — if configured — the
    remote checkpoint servers.
    """

    def __init__(self, sim: "Simulator", spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.nodes: List[Node] = [Node(node_id=i, spec=spec.node) for i in range(spec.n_nodes)]
        self.topology = NodeTopology(spec.n_nodes, spec.nodes_per_switch)
        self.network = Network(sim, spec.network, spec.n_nodes, topology=self.topology)
        self.local_disks = LocalDiskArray(sim, spec.n_nodes, spec.local_storage)
        self.remote_storage: Optional[RemoteStorageServers] = None
        needs_remote = (spec.checkpoint_storage == "remote"
                        or (spec.storage_policy is not None
                            and spec.storage_policy.uses_l3))
        if needs_remote:
            self.remote_storage = RemoteStorageServers(
                sim, self.network, spec.n_checkpoint_servers, spec.remote_storage
            )
        base_level = "L3" if spec.checkpoint_storage == "remote" else "L1"
        self.hierarchy = StorageHierarchy(
            sim,
            nodes=self.nodes,
            topology=self.topology,
            network=self.network,
            local=self.local_disks,
            remote=self.remote_storage,
            policy=spec.storage_policy,
            base=(self.remote_storage if spec.checkpoint_storage == "remote"
                  else self.local_disks),
            base_level=base_level,
        )
        self._rank_to_node: Dict[int, int] = {}

    # -- placement --------------------------------------------------------
    def place_ranks(self, n_ranks: int) -> Dict[int, int]:
        """Place ``n_ranks`` MPI ranks onto nodes, one rank per core, round-robin.

        Returns the rank→node mapping.  Matches the paper's setup where each
        node executes at most one MPI process.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        total_cores = sum(node.spec.cores for node in self.nodes)
        if n_ranks > total_cores:
            raise ValueError(
                f"cannot place {n_ranks} ranks on {self.spec.n_nodes} nodes "
                f"with {total_cores} total cores"
            )
        self._rank_to_node.clear()
        for node in self.nodes:
            node.ranks.clear()
        node_idx = 0
        for rank in range(n_ranks):
            # advance to a node with a free core
            while len(self.nodes[node_idx].ranks) >= self.nodes[node_idx].spec.cores:
                node_idx = (node_idx + 1) % self.spec.n_nodes
            self.nodes[node_idx].place_rank(rank)
            self._rank_to_node[rank] = node_idx
            node_idx = (node_idx + 1) % self.spec.n_nodes
        return dict(self._rank_to_node)

    def node_of(self, rank: int) -> int:
        """Node id hosting ``rank``."""
        try:
            return self._rank_to_node[rank]
        except KeyError as exc:
            raise KeyError(f"rank {rank} has not been placed; call place_ranks() first") from exc

    def free_nodes(self) -> List[int]:
        """Healthy nodes currently hosting no ranks (spare candidates)."""
        return [node.node_id for node in self.nodes
                if not node.ranks and not node.failed]

    def migrate_rank(self, rank: int, new_node: int) -> int:
        """Move a placed rank onto ``new_node`` (restart-on-spare placement).

        Updates the rank→node map and both nodes' occupancy; returns the old
        node id.  The caller (the recovery orchestration) is responsible for
        updating the rank context so subsequent traffic uses the new node's
        NIC and storage.
        """
        if not 0 <= new_node < self.spec.n_nodes:
            raise ValueError(f"node {new_node} out of range [0, {self.spec.n_nodes})")
        old_node = self.node_of(rank)
        if old_node == new_node:
            return old_node
        self.nodes[old_node].remove_rank(rank)
        self.nodes[new_node].place_rank(rank)
        self._rank_to_node[rank] = new_node
        return old_node

    @property
    def n_ranks(self) -> int:
        """Number of ranks currently placed."""
        return len(self._rank_to_node)

    # -- storage selection -------------------------------------------------
    @property
    def checkpoint_storage(self) -> StorageSystem:
        """The storage system used for checkpoint images and message logs."""
        if self.spec.checkpoint_storage == "remote":
            assert self.remote_storage is not None
            return self.remote_storage
        return self.local_disks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.spec.name!r} nodes={self.spec.n_nodes} "
            f"ranks={self.n_ranks} storage={self.spec.checkpoint_storage}>"
        )
