"""Cluster hardware substrate.

Models the pieces of the HKU Gideon 300 cluster (and variations of it) that
the checkpoint/restart protocols interact with:

* :class:`~repro.cluster.node.Node` — a compute node with CPU speed and
  physical memory,
* :class:`~repro.cluster.network.Network` — a latency/bandwidth switched
  network with per-NIC serialisation (Fast Ethernet by default),
* :class:`~repro.cluster.storage.LocalDiskArray` and
  :class:`~repro.cluster.storage.RemoteStorageServers` — where checkpoint
  images and message logs are written,
* :class:`~repro.cluster.topology.ClusterSpec` / :class:`Cluster` — a bundle
  of all of the above plus process placement,
* :class:`~repro.cluster.failure.FailureModel` — failure injection.
"""

from repro.cluster.node import Node, NodeSpec
from repro.cluster.network import Network, NetworkSpec, FAST_ETHERNET, GIGABIT_ETHERNET, INFINIBAND_SDR
from repro.cluster.storage import (
    StorageSpec,
    LocalDiskArray,
    RemoteStorageServers,
    StorageSystem,
    LOCAL_IDE_DISK,
    NFS_CHECKPOINT_SERVER,
)
from repro.cluster.topology import ClusterSpec, Cluster, GIDEON_300, NodeTopology
from repro.cluster.failure import (
    FailureModel,
    FailureEvent,
    ExponentialFailureModel,
    PoissonFailureModel,
    TraceFailureModel,
)

__all__ = [
    "Node",
    "NodeSpec",
    "Network",
    "NetworkSpec",
    "FAST_ETHERNET",
    "GIGABIT_ETHERNET",
    "INFINIBAND_SDR",
    "StorageSpec",
    "LocalDiskArray",
    "RemoteStorageServers",
    "StorageSystem",
    "LOCAL_IDE_DISK",
    "NFS_CHECKPOINT_SERVER",
    "ClusterSpec",
    "Cluster",
    "GIDEON_300",
    "NodeTopology",
    "FailureModel",
    "FailureEvent",
    "ExponentialFailureModel",
    "PoissonFailureModel",
    "TraceFailureModel",
]
