"""Multi-level checkpoint storage hierarchy (L1 local / L2 partner / L3 remote).

See :mod:`repro.storage.policy` for the level semantics and
:mod:`repro.storage.hierarchy` for the runtime subsystem.
"""

from repro.storage.hierarchy import (
    ImageCopy,
    ImageRecord,
    RestorePlan,
    StorageHierarchy,
    UnsurvivableFailure,
)
from repro.storage.policy import (
    LEVELS,
    PARTNER_CROSS_SWITCH,
    PARTNER_SAME_SWITCH,
    StoragePolicy,
    full_hierarchy,
    local_only,
    partner_replicated,
)

__all__ = [
    "ImageCopy",
    "ImageRecord",
    "LEVELS",
    "PARTNER_CROSS_SWITCH",
    "PARTNER_SAME_SWITCH",
    "RestorePlan",
    "StorageHierarchy",
    "StoragePolicy",
    "UnsurvivableFailure",
    "full_hierarchy",
    "local_only",
    "partner_replicated",
]
