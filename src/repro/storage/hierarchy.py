"""The checkpoint-storage hierarchy: where images live, where restarts read.

This subsystem sits between the checkpoint protocols (which *produce* images)
and the recovery orchestration (which must *retrieve* them).  It owns three
levels (see :mod:`repro.storage.policy`):

* **L1** — the node-local disk (:class:`~repro.cluster.storage.LocalDiskArray`),
* **L2** — an asynchronous partner replica on a topology-aware buddy node,
  shipped over the live, contended :class:`~repro.cluster.network.Network`
  with a *bounded* in-flight buffer per source node (drain traffic
  back-pressures the checkpointing rank instead of piling up), and
* **L3** — the remote checkpoint servers
  (:class:`~repro.cluster.storage.RemoteStorageServers`).

A *catalog* records which levels hold each ``(rank, ckpt_id)`` image and on
which node, and survives node deaths conservatively: a copy on a crashed node
is unreadable while the node is down, and a copy on a node whose *disk* was
destroyed (a whole-switch power event) is lost forever.  Restart-time tier
selection (:meth:`StorageHierarchy.restore_plan`) picks the cheapest
*surviving* copy — local if the node reboots in place, partner if the node is
dead, remote if node and partner are both gone — and returns None when no
copy survives, which the recovery orchestration reports as an *unsurvivable*
failure instead of silently pretending a dead node's disk is readable.

**Legacy mode** (``policy=None``, the default for every pre-existing config)
routes all I/O through this same API but delegates verbatim to the single
configured storage system, so default runs stay bit-identical to the parity
goldens while still feeding the per-tier byte counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.ckpt.scheduler import tier_levels
from repro.sim.engine import Interrupt
from repro.sim.primitives import Event, Resource
from repro.storage.policy import PARTNER_CROSS_SWITCH, StoragePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.network import Network
    from repro.cluster.node import Node
    from repro.cluster.storage import LocalDiskArray, RemoteStorageServers, StorageSystem
    from repro.cluster.topology import NodeTopology
    from repro.sim.engine import Simulator


@dataclass
class ImageCopy:
    """One physical copy of a checkpoint image on some level."""

    level: str
    #: node holding the copy (None for L3 — the remote servers)
    node: Optional[int]
    completed_at: float
    #: True once the copy's medium was destroyed (disk lost with its node)
    lost: bool = False


@dataclass
class ImageRecord:
    """Catalog entry: every copy of one rank's checkpoint image."""

    rank: int
    ckpt_id: int
    nbytes: int
    origin_node: int
    copies: List[ImageCopy] = field(default_factory=list)
    #: per-work-unit domain progress captured with the image (unit → completed
    #: steps); elastic shrink restarts read this from a dead rank's newest
    #: surviving image to know where its adopted units resume
    domain_state: Optional[Dict[int, int]] = None
    #: scheduled async (L2) copies still in flight; the image is *safe* —
    #: eligible as a garbage-collection point for the sender logs protecting
    #: it — only once this reaches zero (a copy that dies with its endpoint
    #: never decrements it: an unsafe image stays unsafe)
    pending_async: int = 0
    #: callbacks fired the moment the image becomes safe
    safe_callbacks: List = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """True once every scheduled copy of this image has materialised."""
        return self.pending_async == 0

    def copy_on(self, level: str) -> Optional[ImageCopy]:
        """The (first) surviving copy on ``level``, or None."""
        for copy in self.copies:
            if copy.level == level and not copy.lost:
                return copy
        return None

    def levels(self) -> Tuple[str, ...]:
        """Levels currently holding a surviving copy, cheapest first."""
        return tuple(sorted({c.level for c in self.copies if not c.lost},
                            key=("L1", "L2", "L3").index))


@dataclass(frozen=True)
class RestorePlan:
    """The tier selected to restore one image, and where to read it."""

    level: str
    #: node whose disk serves the read (None for L3)
    source_node: Optional[int]


class UnsurvivableFailure(RuntimeError):
    """No surviving copy of a required checkpoint image exists anywhere."""


class StorageHierarchy:
    """Owns checkpoint-image placement across L1/L2/L3 and restart reads.

    Parameters
    ----------
    sim / nodes / topology / network:
        The simulated substrate (the cluster wires these in).
    local / remote:
        The L1 disk array and — when configured — the L3 server pool.
    policy:
        The :class:`~repro.storage.policy.StoragePolicy`; None selects
        *legacy mode*: all I/O delegates to ``base`` exactly as before the
        hierarchy existed (bit-identical goldens), with the byte counters
        attributed to the base level.
    base:
        The storage system legacy mode (and plain :meth:`write`/:meth:`read`
        traffic such as log flushes) delegates to.
    base_level:
        "L1" when ``base`` is the local-disk array, "L3" for remote servers.
    """

    def __init__(
        self,
        sim: "Simulator",
        nodes: Sequence["Node"],
        topology: "NodeTopology",
        network: "Network",
        local: "LocalDiskArray",
        remote: Optional["RemoteStorageServers"],
        policy: Optional[StoragePolicy],
        base: "StorageSystem",
        base_level: str,
    ) -> None:
        if base_level not in ("L1", "L3"):
            raise ValueError("base_level must be 'L1' or 'L3'")
        if policy is not None and policy.uses_l3 and remote is None:
            raise ValueError("policy includes L3 but the cluster has no remote storage")
        self.sim = sim
        self.nodes = nodes
        self.topology = topology
        self.network = network
        self.local = local
        self.remote = remote
        self.policy = policy
        self.base = base
        self.base_level = base_level
        #: (rank, ckpt_id) → every known copy of that image
        self.catalog: Dict[Tuple[int, int], ImageRecord] = {}
        #: per-source-node bounded replication buffer (lazy)
        self._slots: Dict[int, Resource] = {}
        #: per-node disk generation, bumped when the disk is destroyed; an
        #: in-flight partner copy whose endpoint changed generation mid-copy
        #: is discarded instead of recorded
        self._disk_epoch: Dict[int, int] = {}
        # -- statistics ------------------------------------------------------
        self.tier_bytes_written: Dict[str, int] = {"L1": 0, "L2": 0, "L3": 0}
        self.tier_bytes_read: Dict[str, int] = {"L1": 0, "L2": 0, "L3": 0}
        self.partner_copies_started = 0
        self.partner_copies_completed = 0
        self.partner_copies_lost = 0
        self.replication_stalls = 0

    # -- mode ------------------------------------------------------------------
    @property
    def legacy(self) -> bool:
        """True when no policy is set: delegate-verbatim single-tier mode."""
        return self.policy is None

    # -- partner placement ------------------------------------------------------
    def partner_of(self, node: int) -> Optional[int]:
        """The buddy node holding ``node``'s L2 replicas (None = no candidate).

        Cross-switch placement pairs each node with the same-offset node
        behind the *next* edge switch (wrapping), so replica traffic spreads
        instead of converging on one rack and no switch holds both copies of
        anything.  Same-switch placement uses the in-rack ring.  A
        single-switch cluster degrades cross-switch placement to the ring —
        there is no second switch to prefer.
        """
        topo = self.topology
        switch = topo.switch_of(node)
        members = list(topo.switch_nodes(switch))
        offset = node - members[0]
        cross = (self.policy is not None
                 and self.policy.partner_placement == PARTNER_CROSS_SWITCH)
        if cross and topo.n_switches > 1:
            target = list(topo.switch_nodes((switch + 1) % topo.n_switches))
            return target[offset % len(target)]
        if len(members) < 2:
            return None
        return members[(offset + 1) % len(members)]

    # -- write path -------------------------------------------------------------
    def write(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Tier-agnostic write (log flushes, legacy image dumps).

        Delegates verbatim to the base storage system — same events, same
        timing as before the hierarchy existed — and books the bytes under
        the base level.
        """
        elapsed = yield from self.base.write(node, nbytes)
        self.tier_bytes_written[self.base_level] += nbytes
        return elapsed

    def read(self, node: int, nbytes: int) -> Generator[Event, None, float]:
        """Tier-agnostic read (legacy restores, replayed-log fetches)."""
        elapsed = yield from self.base.read(node, nbytes)
        self.tier_bytes_read[self.base_level] += nbytes
        return elapsed

    def write_image(
        self, rank: int, node: int, ckpt_id: int, nbytes: int,
        domain_state: Optional[Dict[int, int]] = None,
    ) -> Generator[Event, None, Tuple[str, ...]]:
        """Persist one checkpoint image according to the policy.

        Synchronous levels (L1, L3) complete before this coroutine returns —
        the checkpoint's "Checkpoint" stage pays for them, exactly like the
        single-tier dump did.  An L2 promotion acquires a bounded in-flight
        slot (blocking the checkpointing rank when the buffer is full — the
        back-pressure) and then drains in the background over the live
        network.  Returns the levels this image was scheduled onto.
        """
        if self.legacy:
            yield from self.write(node, nbytes)
            self._record_copy(rank, ckpt_id, nbytes, node,
                              self.base_level,
                              node if self.base_level == "L1" else None,
                              domain_state=domain_state)
            return (self.base_level,)
        assert self.policy is not None
        levels = tier_levels(self.policy, ckpt_id)
        record = self._record(rank, ckpt_id, nbytes, node,
                              domain_state=domain_state)
        if "L1" in levels:
            yield from self.local.write(node, nbytes)
            self.tier_bytes_written["L1"] += nbytes
            record.copies.append(ImageCopy("L1", node, self.sim.now))
        if "L3" in levels:
            assert self.remote is not None
            yield from self.remote.write(node, nbytes)
            self.tier_bytes_written["L3"] += nbytes
            record.copies.append(ImageCopy("L3", None, self.sim.now))
        if "L2" in levels:
            partner = self.partner_of(node)
            if partner is not None and not self.nodes[partner].failed:
                hold = yield from self._acquire_slot(node)
                self.partner_copies_started += 1
                record.pending_async += 1
                self.sim.process(
                    self._replicate(record, node, partner, nbytes, hold),
                    name="l2-replicate",
                )
            else:
                # No viable partner (single-node switch, or the buddy is
                # down): the snapshot must not claim a replica was initiated.
                levels = tuple(lvl for lvl in levels if lvl != "L2")
        return levels

    def on_image_safe(self, rank: int, ckpt_id: int, callback) -> None:
        """Invoke ``callback`` once the image's scheduled copies all exist.

        Fires immediately for images with no async copies in flight (every
        legacy/sync-only write).  The checkpoint protocols use this to delay
        moving their log-GC point onto a new checkpoint until that checkpoint
        is actually restorable — the SCR rule that a checkpoint does not
        *retire* its predecessor until its replication drained.  Without it,
        a failure landing while the newest image's partner copy is still in
        flight would have to roll back to the previous checkpoint, whose
        replay bytes the senders may already have garbage-collected.
        """
        record = self.catalog.get((rank, ckpt_id))
        if record is None or record.safe:
            callback()
            return
        record.safe_callbacks.append(callback)

    def image_is_safe(self, rank: int, ckpt_id: int) -> bool:
        """Whether every scheduled copy of one image has materialised."""
        record = self.catalog.get((rank, ckpt_id))
        return record is not None and record.safe

    def _acquire_slot(self, node: int) -> Generator[Event, None, object]:
        """Claim one in-flight replication slot for ``node`` (may block)."""
        slots = self._slots.get(node)
        if slots is None:
            assert self.policy is not None
            slots = Resource(self.sim, capacity=self.policy.max_inflight_copies,
                             name=f"l2-buffer:{node}")
            self._slots[node] = slots
        hold = slots.acquire_nowait()
        if hold is not None:
            return (slots, hold)
        # Buffer full: the checkpointing rank stalls until a copy drains.
        self.replication_stalls += 1
        req = slots.request()
        try:
            yield req
        except BaseException:
            slots.release(req)
            raise
        return (slots, req)

    def _replicate(self, record: ImageRecord, src: int, partner: int,
                   nbytes: int, slot_hold: object) -> Generator[Event, None, None]:
        """Background partner copy: local read → network ship → partner write."""
        slots, hold = slot_hold
        src_epoch = self._disk_epoch.get(src, 0)
        dst_epoch = self._disk_epoch.get(partner, 0)
        # Telemetry (when attached to the simulator) records each copy as a
        # retroactive span at its outcome — overlapping copies share the
        # ``storage`` track, and lost/interrupted copies close aborted.
        telemetry = self.sim.telemetry
        tracing = telemetry is not None and telemetry.tracing
        started_at = self.sim.now

        def _copy_span(aborted: bool) -> None:
            telemetry.tracer.add(
                "l2_partner_copy", start=started_at, end=self.sim.now,
                track="storage", category="storage", aborted=aborted,
                rank=record.rank, ckpt_id=record.ckpt_id, src=src,
                partner=partner, bytes=nbytes)

        try:
            yield from self.local.read(src, nbytes)
            yield from self.network.transfer(src, partner, nbytes)
            yield from self.local.write(partner, nbytes)
            if (self.nodes[src].failed or self.nodes[partner].failed
                    or self._disk_epoch.get(src, 0) != src_epoch
                    or self._disk_epoch.get(partner, 0) != dst_epoch):
                # An endpoint died (or lost its disk) mid-copy: the stream
                # died with it, the replica never materialised.
                self.partner_copies_lost += 1
                if tracing:
                    _copy_span(aborted=True)
                return
            self.tier_bytes_written["L2"] += nbytes
            self.partner_copies_completed += 1
            record.copies.append(ImageCopy("L2", partner, self.sim.now))
            record.pending_async -= 1
            if tracing:
                _copy_span(aborted=False)
            if record.safe and record.safe_callbacks:
                callbacks, record.safe_callbacks = record.safe_callbacks, []
                for callback in callbacks:
                    callback()
        except Interrupt:
            self.partner_copies_lost += 1
            if tracing:
                _copy_span(aborted=True)
        finally:
            slots.release(hold)

    # -- catalog ---------------------------------------------------------------
    def _record(self, rank: int, ckpt_id: int, nbytes: int, node: int,
                domain_state: Optional[Dict[int, int]] = None) -> ImageRecord:
        record = ImageRecord(rank=rank, ckpt_id=ckpt_id, nbytes=nbytes,
                             origin_node=node, domain_state=domain_state)
        self.catalog[(rank, ckpt_id)] = record
        return record

    def _record_copy(self, rank: int, ckpt_id: int, nbytes: int,
                     origin: int, level: str, node: Optional[int],
                     domain_state: Optional[Dict[int, int]] = None) -> None:
        record = self._record(rank, ckpt_id, nbytes, origin,
                              domain_state=domain_state)
        record.copies.append(ImageCopy(level, node, self.sim.now))

    def image_levels(self, rank: int, ckpt_id: int) -> Tuple[str, ...]:
        """Levels currently holding a surviving copy of one image."""
        record = self.catalog.get((rank, ckpt_id))
        return record.levels() if record is not None else ()

    def node_failed(self, node: int, disk_lost: bool = False) -> None:
        """A node died.  With ``disk_lost`` its stored images are gone forever.

        A plain crash leaves the disk intact (an in-place reboot can read it
        again); a correlated outage that destroys the disk marks every copy
        located there as lost, which is what makes same-switch partner
        replication unable to survive a whole-switch event.
        """
        if not disk_lost:
            return
        self._disk_epoch[node] = self._disk_epoch.get(node, 0) + 1
        for record in self.catalog.values():
            for copy in record.copies:
                if copy.node == node:
                    copy.lost = True

    # -- restore path ------------------------------------------------------------
    def restore_plan(
        self,
        rank: int,
        ckpt_id: int,
        reader_node: int,
        assume_rebooted: Set[int] = frozenset(),
    ) -> Optional[RestorePlan]:
        """Cheapest surviving tier for one image read from ``reader_node``.

        * **L1** requires the copy to sit on the reader's own node and the
          node to be up — or about to reboot in place (``assume_rebooted``):
          local images are process-private files, nobody serves them remotely.
        * **L2** requires the partner node holding the replica to be alive;
          the read ships the image partner → reader over the network.
        * **L3** always survives (the remote servers are outside the
          failure domain, as in the paper's isolated checkpoint servers).

        Returns None when no copy survives — the caller reports the failure
        as unsurvivable instead of crashing.
        """
        record = self.catalog.get((rank, ckpt_id))
        if record is None:
            return None
        l1 = record.copy_on("L1")
        if (l1 is not None and l1.node == reader_node
                and (not self.nodes[l1.node].failed or l1.node in assume_rebooted)):
            return RestorePlan("L1", l1.node)
        l2 = record.copy_on("L2")
        if l2 is not None and not self.nodes[l2.node].failed:
            return RestorePlan("L2", l2.node)
        if record.copy_on("L3") is not None:
            return RestorePlan("L3", None)
        return None

    def perform_restore(
        self, plan: RestorePlan, reader_node: int, nbytes: int
    ) -> Generator[Event, None, float]:
        """Execute one image read according to ``plan`` (a sim coroutine)."""
        start = self.sim.now
        if plan.level == "L1":
            yield from self.local.read(reader_node, nbytes)
        elif plan.level == "L2":
            assert plan.source_node is not None
            yield from self.local.read(plan.source_node, nbytes)
            if plan.source_node != reader_node:
                yield from self.network.transfer(plan.source_node, reader_node, nbytes)
        elif plan.level == "L3":
            assert self.remote is not None
            yield from self.remote.read(reader_node, nbytes)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown level {plan.level!r}")
        self.tier_bytes_read[plan.level] += nbytes
        return self.sim.now - start

    # -- reporting ---------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Per-tier byte totals and replication counters (for payloads)."""
        return {
            "tier_bytes_written": dict(self.tier_bytes_written),
            "tier_bytes_read": dict(self.tier_bytes_read),
            "partner_copies_started": self.partner_copies_started,
            "partner_copies_completed": self.partner_copies_completed,
            "partner_copies_lost": self.partner_copies_lost,
            "replication_stalls": self.replication_stalls,
        }

    def describe(self) -> str:
        """One-line summary used in reports."""
        if self.legacy:
            return f"legacy {self.base_level} ({self.base.describe()})"
        return self.policy.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StorageHierarchy {self.describe()} images={len(self.catalog)} "
                f"l2={self.partner_copies_completed}>")
