"""Storage-tier policy: which levels hold each checkpoint, and how.

SCR and FTI organise checkpoint storage as a *hierarchy*: cheap, failure-prone
levels absorb the frequent checkpoints, expensive resilient levels take a
subset.  The policy here names three levels,

* **L1** — the node's local disk (fast, dies with the node),
* **L2** — a topology-aware *partner replica*: an async copy of the image on a
  buddy node, cross-switch preferred so a whole-switch outage cannot take both
  copies, and
* **L3** — the remote/parallel file system (the paper's dedicated checkpoint
  servers; survives anything, costs the most),

and schedules them FTI-style: every checkpoint lands on L1, every ``k``-th is
promoted to L2, every ``m``-th to L3 (see
:func:`repro.ckpt.scheduler.tier_levels`).

The module is import-light on purpose: :class:`StoragePolicy` is carried by
:class:`~repro.cluster.topology.ClusterSpec` and serialised into campaign
keys, so it must not drag the simulator in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


#: canonical level names, cheapest first
LEVELS: Tuple[str, ...] = ("L1", "L2", "L3")

#: partner-placement modes
PARTNER_CROSS_SWITCH = "cross_switch"
PARTNER_SAME_SWITCH = "same_switch"


@dataclass(frozen=True)
class StoragePolicy:
    """Per-run configuration of the checkpoint-storage hierarchy.

    Parameters
    ----------
    levels:
        Subset of :data:`LEVELS` the run uses.  Must contain at least one
        *synchronous* level (L1 or L3) so every checkpoint has a durable
        home the moment the dump returns; L2 is always asynchronous.
    l2_every / l3_every:
        FTI-style promotion intervals: the ``k``-th / ``m``-th checkpoint
        wave (by checkpoint id, 1-based) is copied to that level.  1 means
        every checkpoint.
    partner_placement:
        ``"cross_switch"`` places each node's L2 partner behind a *different*
        edge switch (survives a whole-switch outage); ``"same_switch"`` keeps
        the replica in the rack (cheaper in a hierarchical network, but a
        correlated outage takes both copies — the survivability experiments
        measure exactly this trade).
    max_inflight_copies:
        Bound on concurrent partner copies *per source node*.  A checkpoint
        whose L2 promotion finds the buffer full waits for a slot — drain
        traffic back-pressures the checkpointing rank instead of piling up
        unboundedly behind a contended network.
    """

    levels: Tuple[str, ...] = ("L1",)
    l2_every: int = 1
    l3_every: int = 1
    partner_placement: str = PARTNER_CROSS_SWITCH
    max_inflight_copies: int = 2

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("levels must not be empty")
        object.__setattr__(self, "levels", tuple(self.levels))
        for level in self.levels:
            if level not in LEVELS:
                raise ValueError(f"unknown storage level {level!r}; expected one of {LEVELS}")
        if len(set(self.levels)) != len(self.levels):
            raise ValueError("levels must not repeat")
        if "L1" not in self.levels and "L3" not in self.levels:
            raise ValueError("policy needs a synchronous level (L1 or L3); "
                             "an async-only (L2) hierarchy would leave fresh "
                             "checkpoints with no durable copy")
        if self.l2_every < 1 or self.l3_every < 1:
            raise ValueError("l2_every and l3_every must be >= 1")
        if self.partner_placement not in (PARTNER_CROSS_SWITCH, PARTNER_SAME_SWITCH):
            raise ValueError(
                f"unknown partner_placement {self.partner_placement!r}; expected "
                f"{PARTNER_CROSS_SWITCH!r} or {PARTNER_SAME_SWITCH!r}")
        if self.max_inflight_copies < 1:
            raise ValueError("max_inflight_copies must be >= 1")

    # -- introspection --------------------------------------------------------
    @property
    def uses_l1(self) -> bool:
        """True when images land on the node-local disk."""
        return "L1" in self.levels

    @property
    def uses_l2(self) -> bool:
        """True when (some) images get a partner replica."""
        return "L2" in self.levels

    @property
    def uses_l3(self) -> bool:
        """True when (some) images reach the remote file system."""
        return "L3" in self.levels

    def with_levels(self, *levels: str) -> "StoragePolicy":
        """A copy of this policy with a different level set."""
        return replace(self, levels=tuple(levels))

    def describe(self) -> str:
        """One-line summary used in experiment tables."""
        parts = []
        for level in self.levels:
            if level == "L2":
                every = f"/{self.l2_every}" if self.l2_every > 1 else ""
                parts.append(f"L2({self.partner_placement}{every})")
            elif level == "L3":
                every = f"/{self.l3_every}" if self.l3_every > 1 else ""
                parts.append(f"L3{every}")
            else:
                parts.append(level)
        return "+".join(parts)


def local_only() -> StoragePolicy:
    """L1-only: today's local-disk behaviour, expressed as a policy."""
    return StoragePolicy(levels=("L1",))


def partner_replicated(
    placement: str = PARTNER_CROSS_SWITCH,
    l2_every: int = 1,
    max_inflight_copies: int = 2,
) -> StoragePolicy:
    """L1 + async partner replica (the SCR "PARTNER" scheme)."""
    return StoragePolicy(levels=("L1", "L2"), partner_placement=placement,
                         l2_every=l2_every, max_inflight_copies=max_inflight_copies)


def full_hierarchy(
    placement: str = PARTNER_CROSS_SWITCH,
    l2_every: int = 1,
    l3_every: int = 1,
    max_inflight_copies: int = 2,
) -> StoragePolicy:
    """L1 + partner replica + remote file system (the full FTI-style stack)."""
    return StoragePolicy(levels=("L1", "L2", "L3"), partner_placement=placement,
                         l2_every=l2_every, l3_every=l3_every,
                         max_inflight_copies=max_inflight_copies)
