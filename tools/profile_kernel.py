#!/usr/bin/env python
"""cProfile driver for the simulation kernel hot loop.

Profiles one runtime execution (workload + protocol family over the Gideon
cluster model, no trace run) and prints the top functions, so kernel work is
guided by measurements instead of guesses.  Set ``REPRO_SIM_FASTPATH=0`` to
profile the full coroutine model for comparison.

Usage::

    PYTHONPATH=src python tools/profile_kernel.py
    PYTHONPATH=src python tools/profile_kernel.py --workload hpl --ranks 32 \
        --options '{"problem_size": 6000, "block_size": 200, "max_steps": 12}'
    PYTHONPATH=src python tools/profile_kernel.py --sort cumulative --limit 40
    PYTHONPATH=src python tools/profile_kernel.py --out kernel.pstats   # snakeviz etc.
    PYTHONPATH=src python tools/profile_kernel.py --top-alloc 15        # tracemalloc
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.topology import Cluster, GIDEON_300
from repro.experiments.runner import build_family, build_workload
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="halo2d",
                        help="workload name (default: %(default)s)")
    parser.add_argument("--ranks", type=int, default=64,
                        help="number of MPI ranks (default: %(default)s)")
    parser.add_argument("--method", default="NORM",
                        help="protocol method; GP triggers a (cached) trace run")
    parser.add_argument("--options", default=None,
                        help="workload options as a JSON object")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumulative", "ncalls"),
                        help="pstats sort key (default: %(default)s)")
    parser.add_argument("--limit", type=int, default=30,
                        help="number of rows to print (default: %(default)s)")
    parser.add_argument("--out", default=None,
                        help="also dump raw pstats data to this file")
    parser.add_argument("--top-alloc", type=int, default=0, metavar="N",
                        help="run a second pass under tracemalloc and print the "
                             "top-N allocation sites by total bytes (0 = off)")
    args = parser.parse_args(argv)

    options = json.loads(args.options) if args.options else None
    workload = build_workload(args.workload, args.ranks, options)
    cluster_spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, args.ranks))
    family = build_family(args.method, args.ranks, args.workload, cluster_spec, options)
    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    runtime = MpiRuntime(sim, cluster, args.ranks, protocol_family=family,
                         rng=RandomStreams(args.seed))
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    runtime.run_to_completion(limit_s=1e8)
    profiler.disable()
    wall_s = time.perf_counter() - start

    events = sim.processed_events
    elided = sim.stats.events_elided
    print(f"{args.workload} n={args.ranks} method={args.method}: "
          f"{events} events (+{elided} elided) in {wall_s:.3f}s "
          f"-> {events / wall_s:,.0f} ev/s "
          f"({(events + elided) / wall_s:,.0f} model-equivalent ev/s)")
    print(f"stats: {sim.stats!r}\n")

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw profile written to {args.out}")

    if args.top_alloc > 0:
        # Fresh, identically-seeded run: tracemalloc several-fold slows the
        # simulation, so allocation sites are sampled in their own pass and
        # never pollute the cProfile numbers above.
        import tracemalloc

        workload = build_workload(args.workload, args.ranks, options)
        family = build_family(args.method, args.ranks, args.workload,
                              cluster_spec, options)
        sim = Simulator()
        cluster = Cluster(sim, cluster_spec)
        runtime = MpiRuntime(sim, cluster, args.ranks, protocol_family=family,
                             rng=RandomStreams(args.seed))
        runtime.set_memory(workload.memory_map())
        runtime.launch(workload.program_factory())
        tracemalloc.start(25)
        try:
            runtime.run_to_completion(limit_s=1e8)
            snapshot = tracemalloc.take_snapshot()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        print(f"\ntop {args.top_alloc} allocation sites "
              f"(peak {peak / 1e6:.2f} MB, live at end {current / 1e6:.2f} MB):")
        for stat in snapshot.statistics("lineno")[: args.top_alloc]:
            frame = stat.traceback[0]
            print(f"  {stat.size / 1e3:10.1f} KB  {stat.count:8d} blocks  "
                  f"{frame.filename}:{frame.lineno}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
