#!/usr/bin/env python
"""Regenerate the determinism-parity golden file.

Runs every scenario of :func:`repro.experiments.parity.quick_parity_configs`
on the current kernel and writes their simulated metrics to
``tests/data/quick_parity_golden.json``.  The committed golden file was
produced by the pre-fast-path kernel; regenerate it only when a change is
*meant* to alter simulated results (and say so in the commit message).

Usage::

    PYTHONPATH=src python tools/make_parity_golden.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.parity import parity_metrics, quick_parity_configs, scenario_label
from repro.experiments.runner import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                             "quick_parity_golden.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    golden = {}
    for config in quick_parity_configs():
        label = scenario_label(config)
        result = run_scenario(config)
        metrics = parity_metrics(result)
        sim = result.app.contexts[0].sim
        golden[label] = {
            "metrics": metrics,
            # informational: heap events processed by the *app* simulation
            # (restart runs its own simulator); not asserted bit-exactly
            # across kernel generations, only within one.
            "processed_events": sim.processed_events,
        }
        print(f"{label}: makespan={metrics['makespan']:.6f} "
              f"ckpts={metrics['checkpoints_completed']} "
              f"events={sim.processed_events}")

    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {len(golden)} scenarios to {args.out}")


if __name__ == "__main__":
    main()
