#!/usr/bin/env python
"""Render an exported Chrome trace as a summary table and/or HTML timeline.

Consumes the ``trace_event`` JSON written by
:func:`repro.obs.write_chrome_trace` (or any file in the same format) and
produces:

* a phase summary table on stdout — per (category, span name): count, total
  and mean duration, share of the traced window;
* optionally a **self-contained** HTML timeline (``--html out.html``): one
  row per track, spans drawn as positioned ``div`` blocks scaled to
  simulated time, with hover tool-tips carrying the span attributes.  No
  external assets or JavaScript libraries — the file opens anywhere.

The trace itself remains loadable in ``chrome://tracing`` / Perfetto; this
tool exists for terminals and CI artifacts where a browser devtool is not at
hand.

Usage::

    PYTHONPATH=src python tools/timeline.py trace.json
    PYTHONPATH=src python tools/timeline.py trace.json --html timeline.html
    PYTHONPATH=src python tools/timeline.py trace.json --track recovery
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.reporting import Table, format_table

#: fill colours per span category (cycled for unknown categories)
_PALETTE = {
    "ckpt": "#4c78a8",
    "ckpt.stage": "#9ecae9",
    "storage": "#f58518",
    "recovery": "#e45756",
    "recovery.stage": "#f2a49f",
    "campaign": "#54a24b",
    "": "#b5b5b5",
}
_FALLBACK_COLOURS = ["#72b7b2", "#eeca3b", "#b279a2", "#ff9da6", "#9d755d"]


def load_spans(path: str) -> Tuple[List[Dict[str, object]], Dict[int, str]]:
    """Parse a trace_event JSON file into (complete events, tid→track names)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    tracks: Dict[int, str] = {}
    spans: List[Dict[str, object]] = []
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            tracks[int(ev.get("tid", 0))] = str(ev.get("args", {}).get("name", ""))
        elif ph == "X":
            spans.append(ev)
    return spans, tracks


def summary_table(spans: List[Dict[str, object]]) -> Table:
    """Aggregate complete events per (category, name) into a printable table."""
    agg: Dict[Tuple[str, str], List[float]] = {}
    aborted: Dict[Tuple[str, str], int] = {}
    for ev in spans:
        key = (str(ev.get("cat", "")), str(ev.get("name", "")))
        agg.setdefault(key, []).append(float(ev.get("dur", 0.0)) / 1e6)
        if ev.get("args", {}).get("aborted"):
            aborted[key] = aborted.get(key, 0) + 1
    window_s = _window(spans)
    # the share column sums over concurrent tracks, so it can exceed 100%
    table = Table(
        title="Span summary",
        columns=["category", "span", "count", "aborted", "total (s)",
                 "mean (s)", "% of window (all tracks)"],
    )
    for key in sorted(agg, key=lambda k: -sum(agg[k])):
        durs = agg[key]
        total = sum(durs)
        table.add_row(key[0], key[1], len(durs), aborted.get(key, 0), total,
                      total / len(durs), 100.0 * total / window_s if window_s else 0.0)
    return table


def _window(spans: List[Dict[str, object]]) -> float:
    """Traced window in seconds (earliest start to latest end)."""
    if not spans:
        return 0.0
    start = min(float(ev.get("ts", 0.0)) for ev in spans)
    end = max(float(ev.get("ts", 0.0)) + float(ev.get("dur", 0.0)) for ev in spans)
    return (end - start) / 1e6


def _colour(category: str) -> str:
    if category in _PALETTE:
        return _PALETTE[category]
    return _FALLBACK_COLOURS[hash(category) % len(_FALLBACK_COLOURS)]


def render_html(spans: List[Dict[str, object]], tracks: Dict[int, str],
                title: str = "repro timeline") -> str:
    """Build a single-file HTML timeline (no external assets)."""
    if not spans:
        return f"<!doctype html><html><body><p>{html.escape(title)}: empty trace</p></body></html>"
    t0 = min(float(ev["ts"]) for ev in spans)
    t1 = max(float(ev["ts"]) + float(ev.get("dur", 0.0)) for ev in spans)
    window = max(t1 - t0, 1e-9)

    by_tid: Dict[int, List[Dict[str, object]]] = {}
    for ev in spans:
        by_tid.setdefault(int(ev.get("tid", 0)), []).append(ev)

    rows: List[str] = []
    for tid in sorted(by_tid):
        name = tracks.get(tid, f"tid{tid}")
        blocks: List[str] = []
        for ev in sorted(by_tid[tid], key=lambda e: float(e["ts"])):
            left = 100.0 * (float(ev["ts"]) - t0) / window
            width = max(100.0 * float(ev.get("dur", 0.0)) / window, 0.05)
            cat = str(ev.get("cat", ""))
            args = ev.get("args", {}) or {}
            tip_lines = [f"{ev.get('name')} [{cat}]",
                         f"start={float(ev['ts']) / 1e6:.6g}s "
                         f"dur={float(ev.get('dur', 0.0)) / 1e6:.6g}s"]
            tip_lines += [f"{k}={v}" for k, v in sorted(args.items())]
            tip = html.escape("\n".join(tip_lines), quote=True)
            style = (f"left:{left:.4f}%;width:{width:.4f}%;"
                     f"background:{_colour(cat)};")
            if args.get("aborted"):
                style += "border:1px dashed #900;"
            label = html.escape(str(ev.get("name", "")))
            blocks.append(f'<div class="span" style="{style}" title="{tip}">'
                          f"{label}</div>")
        rows.append(
            f'<div class="row"><div class="lbl">{html.escape(name)}</div>'
            f'<div class="lane">{"".join(blocks)}</div></div>'
        )

    axis = "".join(
        f'<span style="left:{pct}%">{(t0 + window * pct / 100.0) / 1e6:.4g}s</span>'
        for pct in (0, 25, 50, 75, 100)
    )
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font: 12px/1.4 -apple-system, "Segoe UI", sans-serif; margin: 1em; }}
.row {{ display: flex; align-items: center; margin: 2px 0; }}
.lbl {{ flex: 0 0 10em; text-align: right; padding-right: 0.6em; color: #444;
       white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }}
.lane {{ position: relative; flex: 1; height: 20px; background: #f4f4f4; }}
.span {{ position: absolute; top: 1px; bottom: 1px; overflow: hidden;
        color: #fff; font-size: 10px; padding-left: 2px; white-space: nowrap;
        border-radius: 2px; box-sizing: border-box; }}
.axis {{ position: relative; height: 1.4em; margin-left: 10.6em; color: #666; }}
.axis span {{ position: absolute; transform: translateX(-50%); }}
</style></head><body>
<h3>{html.escape(title)}</h3>
<p>{len(spans)} spans over {window / 1e6:.6g} simulated seconds.</p>
{"".join(rows)}
<div class="axis">{axis}</div>
</body></html>
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--html", default=None,
                        help="write a self-contained HTML timeline here")
    parser.add_argument("--track", default=None,
                        help="restrict to tracks whose name contains this substring")
    parser.add_argument("--title", default=None, help="HTML page title")
    args = parser.parse_args(argv)

    spans, tracks = load_spans(args.trace)
    if args.track:
        keep = {tid for tid, name in tracks.items() if args.track in name}
        spans = [ev for ev in spans if int(ev.get("tid", 0)) in keep]
        tracks = {tid: name for tid, name in tracks.items() if tid in keep}
    if not spans:
        print("no complete (ph=X) events in trace")
        return 1
    print(format_table(summary_table(spans)))
    if args.html:
        title = args.title or os.path.basename(args.trace)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(spans, tracks, title=title))
        print(f"\nwrote HTML timeline to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
