#!/usr/bin/env python
"""Render sampled run telemetry as a self-contained HTML dashboard.

Consumes the series JSONL written by :func:`repro.obs.write_series_jsonl`
(the :class:`~repro.obs.StateSampler` export) and produces:

* a per-state occupancy summary table on stdout;
* optionally (``--html out.html``) a single-file HTML report — a rank-state
  heatmap (rank × time bin, one colour per state), a utilization
  stacked-area chart (fraction of ranks per state over time), and NIC
  utilization / sender-log line charts.  No external assets or JS
  libraries; every chart carries a legend, hover tool-tips and a
  table-view twin, with light/dark colour schemes selected via
  ``prefers-color-scheme``.

Usage::

    PYTHONPATH=src python tools/dashboard.py series.jsonl
    PYTHONPATH=src python tools/dashboard.py series.jsonl --html dashboard.html
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.reporting import Table, format_table

#: categorical palette (validated fixed slot order; light / dark surface
#: steps) — state identity keeps its colour everywhere in the report
_STATE_COLOURS = {
    "compute": ("#2a78d6", "#3987e5"),
    "send_blocked": ("#eb6834", "#d95926"),
    "recv_blocked": ("#1baf7a", "#199e70"),
    "checkpoint": ("#eda100", "#c98500"),
    "recovery": ("#e87ba4", "#d55181"),
    "finished": ("#008300", "#008300"),
}

#: cap on heatmap cells: beyond this, rank rows are aggregated in blocks
_MAX_HEATMAP_CELLS = 200_000


def load_series(path: str) -> Dict[str, object]:
    """Parse a series JSONL file into ``{meta, bins, phases}``."""
    meta: Dict[str, object] = {}
    bins: List[Dict[str, object]] = []
    phases: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "bin":
                bins.append(record)
            elif kind == "phase":
                phases.append(record)
    return {"meta": meta, "bins": bins, "phases": phases}


def occupancy_table(data: Dict[str, object]) -> Table:
    """Mean fraction of ranks per state over the sampled window."""
    meta = data["meta"]
    states: List[str] = list(meta.get("states", []))
    bins: List[Dict[str, object]] = data["bins"]
    table = Table("Rank-state occupancy (mean fraction of ranks)",
                  ["state", "mean", "peak"])
    if not bins or not states:
        return table
    n_ranks = len(bins[0]["rank_states"])
    for idx, state in enumerate(states):
        fracs = [sum(1 for c in b["rank_states"] if c == idx) / n_ranks
                 for b in bins]
        table.add_row(state, f"{sum(fracs) / len(fracs):.3f}", f"{max(fracs):.3f}")
    return table


# ------------------------------------------------------------------ html
def _css(states: List[str]) -> str:
    light = "\n".join(f"  --state-{s}: {_STATE_COLOURS[s][0]};"
                      for s in states if s in _STATE_COLOURS)
    dark = "\n".join(f"    --state-{s}: {_STATE_COLOURS[s][1]};"
                     for s in states if s in _STATE_COLOURS)
    return f"""
:root {{
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
{light}
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
{dark}
  }}
}}
body {{ font: 13px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 1.5em auto; max-width: 1100px; padding: 0 1em;
       background: var(--page); color: var(--text-primary); }}
figure {{ margin: 1.5em 0; padding: 1em; background: var(--surface-1);
         border: 1px solid var(--grid); border-radius: 6px; }}
figcaption {{ font-weight: 600; margin-bottom: 0.6em; }}
.sub {{ color: var(--text-secondary); font-weight: 400; }}
svg text {{ fill: var(--text-muted); font-size: 10px; }}
svg .axisline {{ stroke: var(--axis); stroke-width: 1; }}
svg .gridline {{ stroke: var(--grid); stroke-width: 1; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 1em; margin: 0.5em 0;
          color: var(--text-secondary); }}
.legend span {{ display: inline-flex; align-items: center; gap: 0.4em; }}
.swatch {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
details {{ margin-top: 0.7em; color: var(--text-secondary); }}
table {{ border-collapse: collapse; margin-top: 0.5em;
        font-variant-numeric: tabular-nums; }}
th, td {{ padding: 2px 10px; text-align: right; border-bottom: 1px solid var(--grid); }}
th {{ color: var(--text-muted); font-weight: 600; }}
td:first-child, th:first-child {{ text-align: left; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 1em; }}
.tile {{ background: var(--surface-1); border: 1px solid var(--grid);
        border-radius: 6px; padding: 0.8em 1.2em; min-width: 10em; }}
.tile .label {{ color: var(--text-secondary); }}
.tile .value {{ font-size: 24px; font-weight: 600; }}
"""


def page_css(states=()) -> str:
    """The report stylesheet (light/dark), reusable by sibling tools."""
    return _css(list(states))


def _legend(states: List[str]) -> str:
    items = "".join(
        f'<span><i class="swatch" style="background:var(--state-{s})"></i>'
        f"{html.escape(s.replace('_', ' '))}</span>"
        for s in states)
    return f'<div class="legend">{items}</div>'


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _axis_ticks(t0: float, t1: float, width: int, x0: int, y: int,
                x_fmt=lambda t: f"{t:.3g}s") -> str:
    parts = []
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = x0 + frac * (width - x0)
        t = t0 + frac * (t1 - t0)
        parts.append(f'<text x="{x:.1f}" y="{y}" text-anchor="middle">'
                     f"{html.escape(x_fmt(t))}</text>")
    return "".join(parts)


def _heatmap(data: Dict[str, object]) -> str:
    meta = data["meta"]
    bins = data["bins"]
    states: List[str] = list(meta["states"])
    n_ranks = len(bins[0]["rank_states"])
    n_bins = len(bins)
    # aggregate rank rows in blocks when the matrix would be too large to draw
    block = 1
    while (n_ranks // block + 1) * n_bins > _MAX_HEATMAP_CELLS:
        block *= 2
    n_rows = (n_ranks + block - 1) // block
    x0, top, axis_band = 46, 8, 22
    cell_w, cell_h = max(1100 // max(n_bins, 1), 2), max(min(14, 420 // n_rows), 2)
    width, height = x0 + n_bins * cell_w, top + n_rows * cell_h + axis_band
    gap = 1 if cell_w >= 4 and cell_h >= 4 else 0
    cells: List[str] = []
    for i, b in enumerate(bins):
        row_states = b["rank_states"]
        for row in range(n_rows):
            lo, hi = row * block, min((row + 1) * block, n_ranks)
            chunk = row_states[lo:hi]
            # block rows show the dominant state of their ranks
            code = max(set(chunk), key=chunk.count)
            name = states[code]
            label = (f"rank {lo}" if block == 1 else f"ranks {lo}-{hi - 1}")
            tip = html.escape(
                f"{label}\n[{b['t0']:.4g}s, {b['t1']:.4g}s): {name.replace('_', ' ')}",
                quote=True)
            cells.append(
                f'<rect x="{x0 + i * cell_w}" y="{top + row * cell_h}" '
                f'width="{cell_w - gap}" height="{cell_h - gap}" '
                f'fill="var(--state-{name})"><title>{tip}</title></rect>')
    labels = []
    for row in range(0, n_rows, max(n_rows // 8, 1)):
        lo = row * block
        labels.append(f'<text x="{x0 - 6}" y="{top + row * cell_h + cell_h - 2}" '
                      f'text-anchor="end">r{lo}</text>')
    axis = _axis_ticks(bins[0]["t0"], bins[-1]["t1"], width, x0, height - 6)
    note = (f" · {block} ranks per row" if block > 1 else "")
    return f"""<figure>
<figcaption>Rank-state heatmap <span class="sub">— one cell per rank × {meta['bin_s']:.4g}s bin{note}</span></figcaption>
{_legend(states)}
<svg viewBox="0 0 {width} {height}" width="100%" role="img" aria-label="Rank-state heatmap">
<line class="axisline" x1="{x0}" y1="{top + n_rows * cell_h}" x2="{width}" y2="{top + n_rows * cell_h}"/>
{''.join(labels)}
{''.join(cells)}
{axis}
</svg>
{_table_view(data, kind="counts")}
</figure>"""


def _stacked_area(data: Dict[str, object]) -> str:
    meta = data["meta"]
    bins = data["bins"]
    states: List[str] = list(meta["states"])
    n_ranks = len(bins[0]["rank_states"])
    x0, top, axis_band, plot_h = 46, 8, 22, 180
    width = 1100
    height = top + plot_h + axis_band
    t0, t1 = bins[0]["t0"], bins[-1]["t1"]
    span = max(t1 - t0, 1e-12)

    def x_of(t: float) -> float:
        return x0 + (t - t0) / span * (width - x0)

    xs = [x_of((b["t0"] + b["t1"]) / 2.0) for b in bins]
    cum = [0.0] * len(bins)
    layers: List[str] = []
    boundaries: List[str] = []
    for idx, state in enumerate(states):
        fracs = [sum(1 for c in b["rank_states"] if c == idx) / n_ranks
                 for b in bins]
        lower = list(cum)
        cum = [c + f for c, f in zip(cum, fracs)]
        pts_top = [f"{x:.1f},{top + plot_h * (1 - v):.1f}" for x, v in zip(xs, cum)]
        pts_bot = [f"{x:.1f},{top + plot_h * (1 - v):.1f}"
                   for x, v in zip(reversed(xs), reversed(lower))]
        if any(fracs):
            layers.append(
                f'<polygon points="{" ".join(pts_top + pts_bot)}" '
                f'fill="var(--state-{state})" fill-opacity="0.85">'
                f'<title>{html.escape(state.replace("_", " "), quote=True)}</title></polygon>')
            # 2px surface-coloured separator between stacked fills
            boundaries.append(
                f'<polyline points="{" ".join(pts_top)}" fill="none" '
                f'stroke="var(--surface-1)" stroke-width="2"/>')
    grid = "".join(
        f'<line class="gridline" x1="{x0}" y1="{top + plot_h * (1 - v):.1f}" '
        f'x2="{width}" y2="{top + plot_h * (1 - v):.1f}"/>'
        f'<text x="{x0 - 6}" y="{top + plot_h * (1 - v) + 3:.1f}" '
        f'text-anchor="end">{int(v * 100)}%</text>'
        for v in (0.0, 0.5, 1.0))
    axis = _axis_ticks(t0, t1, width, x0, height - 6)
    return f"""<figure>
<figcaption>Utilization stacked area <span class="sub">— fraction of ranks per state</span></figcaption>
{_legend(states)}
<svg viewBox="0 0 {width} {height}" width="100%" role="img" aria-label="Utilization stacked area">
{grid}
{''.join(layers)}
{''.join(boundaries)}
<line class="axisline" x1="{x0}" y1="{top + plot_h}" x2="{width}" y2="{top + plot_h}"/>
{axis}
</svg>
{_table_view(data, kind="fractions")}
</figure>"""


def line_chart_svg(points, title: str, sub: str,
                   colour: str = "var(--series-1)",
                   fmt=lambda v: f"{v:.3g}",
                   x_fmt=lambda t: f"{t:.3g}s") -> str:
    """One single-series SVG line chart figure (the report's house style).

    ``points`` is a sequence of ``(x, value, tooltip)`` triples (``tooltip``
    may be ``None`` for the default ``x: value`` form).  Reused by the
    benchmark-trend tool, so it assumes nothing about the x axis beyond
    monotonicity — ``x_fmt`` renders the axis ticks.
    """
    points = [(float(x), float(v), tip) for x, v, tip in points]
    x0, top, axis_band, plot_h = 56, 8, 22, 120
    width = 1100
    height = top + plot_h + axis_band
    t0, t1 = points[0][0], points[-1][0]
    span = max(t1 - t0, 1e-12)
    vmax = max(max(v for _, v, _ in points), 1e-12)
    pts = []
    dots = []
    for x_val, v, tip in points:
        x = x0 + (x_val - t0) / span * (width - x0)
        y = top + plot_h * (1 - v / vmax)
        pts.append(f"{x:.1f},{y:.1f}")
        tip = html.escape(tip if tip is not None else f"{x_fmt(x_val)}: {fmt(v)}",
                          quote=True)
        dots.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" fill="transparent">'
                    f"<title>{tip}</title></circle>")
    grid = "".join(
        f'<line class="gridline" x1="{x0}" y1="{top + plot_h * (1 - g):.1f}" '
        f'x2="{width}" y2="{top + plot_h * (1 - g):.1f}"/>'
        f'<text x="{x0 - 6}" y="{top + plot_h * (1 - g) + 3:.1f}" '
        f'text-anchor="end">{fmt(vmax * g)}</text>'
        for g in (0.0, 0.5, 1.0))
    axis = _axis_ticks(t0, t1, width, x0, height - 6, x_fmt=x_fmt)
    # single series: the caption names it, no legend box needed
    return f"""<figure>
<figcaption>{html.escape(title)} <span class="sub">— {html.escape(sub)}</span></figcaption>
<svg viewBox="0 0 {width} {height}" width="100%" role="img" aria-label="{html.escape(title)}">
{grid}
<polyline points="{' '.join(pts)}" fill="none" stroke="{colour}"
 stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>
<line class="axisline" x1="{x0}" y1="{top + plot_h}" x2="{width}" y2="{top + plot_h}"/>
{''.join(dots)}
{axis}
</svg>
</figure>"""


def _line_chart(data: Dict[str, object], key: str, title: str, sub: str,
                colour: str, fmt=lambda v: f"{v:.3g}") -> str:
    bins = data["bins"]
    points = [((b["t0"] + b["t1"]) / 2.0, float(b.get(key, 0.0)),
               f"[{b['t0']:.4g}s, {b['t1']:.4g}s): {fmt(float(b.get(key, 0.0)))}")
              for b in bins]
    return line_chart_svg(points, title, sub, colour, fmt=fmt)


def _table_view(data: Dict[str, object], kind: str) -> str:
    meta = data["meta"]
    bins = data["bins"]
    states: List[str] = list(meta["states"])
    n_ranks = len(bins[0]["rank_states"])
    head = "".join(f"<th>{html.escape(s)}</th>" for s in states)
    rows = []
    for b in bins:
        counts = [0] * len(states)
        for c in b["rank_states"]:
            counts[c] += 1
        if kind == "fractions":
            cells = "".join(f"<td>{c / n_ranks:.2f}</td>" for c in counts)
        else:
            cells = "".join(f"<td>{c}</td>" for c in counts)
        rows.append(f"<tr><td>{b['t0']:.4g}–{b['t1']:.4g}s</td>{cells}</tr>")
    return (f"<details><summary>Table view</summary><table>"
            f"<tr><th>bin</th>{head}</tr>{''.join(rows)}</table></details>")


def render_dashboard_html(data: Dict[str, object],
                          title: str = "repro run dashboard") -> str:
    """Build the single-file HTML report."""
    meta = data["meta"]
    bins = data["bins"]
    if not bins:
        return (f"<!doctype html><html><body><p>{html.escape(title)}: "
                f"empty series</p></body></html>")
    states: List[str] = list(meta["states"])
    summary = meta.get("summary", {}) or {}
    tiles = "".join(
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}</div></div>'
        for label, value in (
            ("Ranks", str(meta.get("n_ranks", len(bins[0]["rank_states"])))),
            ("Sampled window", f"{bins[-1]['t1']:.4g}s"),
            ("Peak NIC utilization", f"{summary.get('nic_util_peak', 0.0):.1%}"),
            ("Mean NIC utilization", f"{summary.get('nic_util_mean', 0.0):.1%}"),
            ("Max inbox depth", f"{summary.get('inbox_depth_max', 0.0):.0f}"),
            ("Peak sender-log bytes", _fmt_bytes(summary.get("log_bytes_peak", 0.0))),
        ))
    charts = [
        _heatmap(data),
        _stacked_area(data),
        _line_chart(data, "nic_busy_frac", "NIC utilization",
                    "fraction of NICs with an in-flight transfer",
                    "var(--series-1)", fmt=lambda v: f"{v:.0%}"),
        _line_chart(data, "log_bytes_total", "Sender-log retained bytes",
                    "total across ranks", "var(--series-2)", fmt=_fmt_bytes),
    ]
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_css(states)}</style></head><body>
<h2>{html.escape(title)}</h2>
<p class="sub">{len(bins)} bins × {meta['bin_s']:.4g}s; sampled passively at event
boundaries — the traced run is bit-identical to an unsampled one.</p>
<div class="tiles">{tiles}</div>
{''.join(charts)}
</body></html>
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("series", help="series JSONL file (write_series_jsonl)")
    parser.add_argument("--html", default=None,
                        help="write the self-contained HTML dashboard here")
    parser.add_argument("--title", default=None, help="HTML page title")
    args = parser.parse_args(argv)

    data = load_series(args.series)
    if not data["bins"]:
        print("no bin records in series file")
        return 1
    print(format_table(occupancy_table(data)))
    summary = data["meta"].get("summary", {}) or {}
    if summary:
        print(f"\nNIC utilization peak/mean: {summary.get('nic_util_peak', 0):.1%}"
              f" / {summary.get('nic_util_mean', 0):.1%}; "
              f"max inbox depth {summary.get('inbox_depth_max', 0):.0f}; "
              f"peak log bytes {summary.get('log_bytes_peak', 0):,.0f}")
    if args.html:
        title = args.title or os.path.basename(args.series)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_dashboard_html(data, title=title))
        print(f"\nwrote HTML dashboard to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
