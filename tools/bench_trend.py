#!/usr/bin/env python
"""Benchmark-history trend over a campaign store's ``benchmarks`` side table.

Every :meth:`CampaignStore.record_benchmark` row is stamped with the payload
schema version, the simulator fingerprint and a UTC timestamp, so a store
that accumulates benchmark runs becomes a performance history.  This tool
renders that history per scenario:

* a stdout table — one row per recorded run, newest last, with the
  events/sec rate and the percentage delta against the previous run of the
  same scenario (regressions are visible as negative deltas);
* optionally (``--html out.html``) a single-file HTML report with one line
  chart per scenario, in the house dashboard style.

Usage::

    PYTHONPATH=src python tools/bench_trend.py --db sweep.sqlite
    PYTHONPATH=src python tools/bench_trend.py --db sweep.sqlite \\
        --name kernel_speed --html trend.html

The same data is served live by the campaign observatory's ``GET /api/bench``.
"""

from __future__ import annotations

import argparse
import html
import os
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from dashboard import line_chart_svg, page_css  # noqa: E402 (sibling tool)

from repro.analysis.reporting import Table, format_table  # noqa: E402
from repro.campaign import CampaignStore  # noqa: E402

#: payload key holding the benchmark's headline rate
RATE_KEY = "events_per_s"


def group_by_scenario(rows) -> Dict[str, List[Dict[str, object]]]:
    """Rows with a rate, grouped by ``payload["scenario"]``, oldest first."""
    groups: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        payload = row.get("payload") or {}
        if RATE_KEY not in payload:
            continue
        scenario = str(payload.get("scenario", "?"))
        groups.setdefault(scenario, []).append(row)
    return groups


def trend_table(rows, name: str) -> Table:
    """Per-scenario events/sec trajectory with deltas against the previous run."""
    table = Table(
        title=f"Benchmark trend: {name} (newest last; Δ vs previous run)",
        columns=["scenario", "recorded (UTC)", "sim version", "payload v",
                 "events/s", "Δ"],
    )
    for scenario, runs in sorted(group_by_scenario(rows).items()):
        previous: Optional[float] = None
        for row in runs:
            payload = row.get("payload") or {}
            rate = float(payload[RATE_KEY])
            if previous in (None, 0.0):
                delta = "—"
            else:
                delta = f"{(rate - previous) / previous:+.1%}"
            table.add_row(
                scenario,
                str(payload.get("recorded_at_utc", row.get("created_at", "?"))),
                str(payload.get("sim_version", "?")),
                payload.get("payload_version", "?"),
                f"{rate:,.0f}",
                delta)
            previous = rate
    return table


def render_trend_html(rows, name: str, title: Optional[str] = None) -> str:
    """Single-file HTML report: one line chart per scenario."""
    title = title or f"benchmark trend: {name}"
    charts: List[str] = []
    for scenario, runs in sorted(group_by_scenario(rows).items()):
        points: List[Tuple[float, float, str]] = []
        for index, row in enumerate(runs):
            payload = row.get("payload") or {}
            rate = float(payload[RATE_KEY])
            stamp = payload.get("recorded_at_utc", row.get("created_at", "?"))
            points.append((float(index), rate,
                           f"run {index + 1} · {stamp}\n"
                           f"{payload.get('sim_version', '?')}: {rate:,.0f} events/s"))
        charts.append(line_chart_svg(
            points, scenario,
            f"{len(runs)} recorded run{'s' if len(runs) != 1 else ''}, events/sec",
            fmt=lambda v: f"{v:,.0f}",
            x_fmt=lambda x: f"run {int(round(x)) + 1}"))
    if not charts:
        charts.append(f"<p>no {html.escape(name)} benchmark rows with an "
                      f"<code>{RATE_KEY}</code> rate recorded yet</p>")
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{page_css()}</style></head><body>
<h2>{html.escape(title)}</h2>
<p class="sub">events/sec per recorded run, grouped by scenario; rows are
stamped with the simulator fingerprint so rate shifts line up with code
changes.</p>
{''.join(charts)}
</body></html>
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render the benchmark events/sec history of a campaign store.")
    parser.add_argument("--db", required=True, help="campaign store sqlite path")
    parser.add_argument("--name", default="kernel_speed",
                        help="benchmark name to trend (default: kernel_speed)")
    parser.add_argument("--html", default=None,
                        help="write a single-file HTML trend report here")
    parser.add_argument("--title", default=None, help="HTML page title")
    args = parser.parse_args(argv)

    store = CampaignStore(args.db)
    try:
        rows = store.benchmark_rows(args.name)
    finally:
        store.close()
    if not rows:
        print(f"no benchmark rows named {args.name!r} in {args.db}")
        return 1
    print(format_table(trend_table(rows, args.name)))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_trend_html(rows, args.name, title=args.title))
        print(f"\nwrote HTML trend report to {args.html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
