"""Figure 3: Conceptual comparison: global coordination has the widest scope and no logging, pure message logging has no coordination but logs everything, the group-based scheme sits in between.

Regenerates the data behind the paper's Figure 3 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-3")
def test_fig03_protocol_comparison(benchmark):
    """Reproduce Figure 3 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure3(FULL))
    table = result['table']
    logged = dict(zip(table.column('scheme'), table.column('logged bytes fraction')))
    assert logged['coordinated (NORM)'] == 0.0
    assert logged['message logging (GP1)'] == 1.0
    assert 0.0 < logged['group-based (GP)'] < 1.0
