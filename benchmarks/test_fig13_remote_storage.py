"""Figure 13: CG with checkpoint images on 4 remote servers: GP completes the same number of checkpoints in no more time than MPICH-VCL, with the gap growing at scale.

Regenerates the data behind the paper's Figure 13 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-13")
def test_fig13_remote_storage(benchmark):
    """Reproduce Figure 13 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure13(FULL))
    series = {s.name: s for s in result['series']}
    largest = series['GP time'].x[-1]
    assert series['GP time'].as_dict()[largest] <= series['VCL time'].as_dict()[largest] * 1.05
    assert series['GP #CKPT'].as_dict()[largest] >= series['VCL #CKPT'].as_dict()[largest]
