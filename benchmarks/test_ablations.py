"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the contribution of
individual mechanisms of the group-based protocol:

* **group size sweep** — how the maximum group size ``G`` trades coordination
  cost against logging volume (the paper's Section 3.2 discussion of faster
  networks allowing larger groups),
* **piggybacked garbage collection** — how much log memory the RR piggyback
  mechanism reclaims,
* **network speed** — how the GP-vs-NORM gap changes on a faster interconnect.
"""

import pytest

from repro.analysis.reporting import Series, Table, format_table
from repro.ckpt import one_shot
from repro.ckpt.base import ProtocolConfig
from repro.ckpt.presets import gp_family, norm_family
from repro.cluster.network import GIGABIT_ETHERNET
from repro.cluster.topology import GIDEON_300, Cluster
from repro.core import CheckpointCoordinator, form_groups
from repro.core.groups import GroupSet
from repro.experiments.config import QUICK
from repro.experiments.runner import obtain_trace
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.hpl import HplParameters, HplWorkload

N_RANKS = 32
HPL_OPTS = dict(QUICK.hpl_options)


def _run(family, cluster_spec, ckpt_at=2.0, seed=5):
    workload = HplWorkload(N_RANKS, HplParameters(**HPL_OPTS))
    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    runtime = MpiRuntime(sim, cluster, N_RANKS, protocol_family=family, rng=RandomStreams(seed))
    runtime.set_memory(workload.memory_map())
    CheckpointCoordinator(runtime, family, one_shot(ckpt_at)).start()
    runtime.launch(workload.program_factory())
    result = runtime.run_to_completion(limit_s=1e7)
    return result, runtime


@pytest.mark.benchmark(group="ablation-group-size")
def test_ablation_group_size_sweep(benchmark):
    """Sweep the maximum group size G: larger groups coordinate more but log less."""

    def experiment():
        trace = obtain_trace("hpl", N_RANKS, GIDEON_300, HPL_OPTS)
        table = Table(
            title=f"Ablation: group size sweep (HPL, {N_RANKS} processes)",
            columns=["G", "groups", "aggregate ckpt time (s)", "logged MB"],
        )
        spec = GIDEON_300.with_nodes(N_RANKS)
        for g in (1, 2, 4, 8, 16, N_RANKS):
            if g == 1:
                groupset = GroupSet.singletons(N_RANKS)
            elif g == N_RANKS:
                groupset = GroupSet.single(N_RANKS)
            else:
                groupset = form_groups(trace, max_group_size=g, n_ranks=N_RANKS).groupset
            family = gp_family(groupset, name=f"G={g}")
            result, runtime = _run(family, spec)
            logged = sum(ctx.protocol.log.total_logged_bytes for ctx in runtime.contexts)
            table.add_row(g, len(groupset.all_groups()),
                          result.aggregate_checkpoint_time(), logged / 1e6)
        return {"table": table}

    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(format_table(result["table"]))
    rows = result["table"].rows
    logged = result["table"].column("logged MB")
    # logging volume must decrease monotonically as groups grow
    assert all(a >= b - 1e-9 for a, b in zip(logged, logged[1:]))


@pytest.mark.benchmark(group="ablation-gc")
def test_ablation_piggyback_garbage_collection(benchmark):
    """The RR piggyback keeps sender logs bounded across repeated checkpoints.

    Uses a 2-D halo exchange rather than HPL: GC needs *bidirectional*
    cross-group channels (the piggybacked RR travels on the reverse
    direction of the logged traffic), and HPL's increasing-ring broadcasts
    use every row channel in one direction only.
    """

    def experiment():
        from repro.ckpt import periodic
        from repro.workloads.synthetic import Halo2DWorkload, SyntheticParameters

        n = 36
        halo_opts = dict(iterations=30, message_bytes=256 * 1024,
                         compute_seconds=0.05, memory_bytes=32 * 1024 * 1024)
        spec = GIDEON_300.with_nodes(n)
        workload = Halo2DWorkload(n, SyntheticParameters(**halo_opts))
        trace = obtain_trace("halo2d", n, GIDEON_300, halo_opts)
        groupset = form_groups(trace, max_group_size=6, n_ranks=n).groupset
        family = gp_family(groupset)
        sim = Simulator()
        cluster = Cluster(sim, spec)
        runtime = MpiRuntime(sim, cluster, n, protocol_family=family,
                             rng=RandomStreams(5))
        runtime.set_memory(workload.memory_map())
        # max_checkpoints bounds the wave count: the 1.5 s interval sits below
        # the wave duration, so every tick would otherwise be eligible.
        CheckpointCoordinator(runtime, family, periodic(1.5, max_checkpoints=6)).start()
        runtime.launch(workload.program_factory())
        runtime.run_to_completion(limit_s=1e7)
        total_logged = sum(ctx.protocol.log.total_logged_bytes for ctx in runtime.contexts)
        gc_bytes = sum(ctx.protocol.log.gc_bytes for ctx in runtime.contexts)
        retained = sum(ctx.protocol.log.retained_bytes for ctx in runtime.contexts)
        table = Table(title="Ablation: piggybacked log garbage collection (halo2d, 36 ranks)",
                      columns=["logged MB", "GC'd MB", "retained MB"])
        table.add_row(total_logged / 1e6, gc_bytes / 1e6, retained / 1e6)
        return {"table": table, "gc_bytes": gc_bytes, "total": total_logged,
                "retained": retained}

    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(format_table(result["table"]))
    assert result["gc_bytes"] > 0
    assert result["retained"] + result["gc_bytes"] == result["total"]


@pytest.mark.benchmark(group="ablation-network")
def test_ablation_faster_network_narrows_the_gap(benchmark):
    """On a faster interconnect global coordination hurts less, so the GP advantage shrinks
    (the paper's argument for choosing larger groups on high-speed networks)."""

    def experiment():
        from dataclasses import replace

        table = Table(title="Ablation: interconnect speed vs GP advantage",
                      columns=["network", "GP agg ckpt (s)", "NORM agg ckpt (s)", "NORM/GP"])
        ratios = []
        for net in (GIDEON_300.network, GIGABIT_ETHERNET):
            spec = replace(GIDEON_300.with_nodes(N_RANKS), network=net)
            trace = obtain_trace("hpl", N_RANKS, GIDEON_300, HPL_OPTS)
            groupset = form_groups(trace, max_group_size=8, n_ranks=N_RANKS).groupset
            gp_result, _ = _run(gp_family(groupset), spec)
            norm_result, _ = _run(norm_family(N_RANKS), spec)
            ratio = norm_result.aggregate_checkpoint_time() / max(
                gp_result.aggregate_checkpoint_time(), 1e-9)
            ratios.append(ratio)
            table.add_row(net.name, gp_result.aggregate_checkpoint_time(),
                          norm_result.aggregate_checkpoint_time(), ratio)
        return {"table": table, "ratios": ratios}

    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(format_table(result["table"]))
    # GP must win on both networks
    assert all(r > 1.0 for r in result["ratios"])
