"""Figure 6: Summed checkpoint time: GP is close to GP1 (uncoordinated) and far below NORM; summed restart time: NORM is lowest, GP close behind, GP1 worst.

Regenerates the data behind the paper's Figure 6 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-6")
def test_fig06_ckpt_restart_time(benchmark):
    """Reproduce Figure 6 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure6(FULL))
    ckpt = {s.name: s for s in result['checkpoint_series']}
    largest = ckpt['NORM'].x[-1]
    assert ckpt['GP'].as_dict()[largest] < ckpt['NORM'].as_dict()[largest]
    restart = {s.name: s for s in result['restart_series']}
    assert restart['GP'].as_dict()[largest] <= restart['GP1'].as_dict()[largest] * 1.2
