"""Figure 11: NPB CG: summed checkpoint time of GP is far below NORM and comparable to GP1; restarts stay close to NORM.

Regenerates the data behind the paper's Figure 11 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-11")
def test_fig11_cg(benchmark):
    """Reproduce Figure 11 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure11(FULL))
    ckpt = {s.name: s for s in result['checkpoint_series']}
    largest = ckpt['NORM'].x[-1]
    assert ckpt['GP'].as_dict()[largest] < ckpt['NORM'].as_dict()[largest]
