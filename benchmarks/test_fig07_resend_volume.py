"""Figure 7: Total data volume replayed during restart: GP1 (uncoordinated) resends at least as much as the group-based formations.

Regenerates the data behind the paper's Figure 7 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-7")
def test_fig07_resend_volume(benchmark):
    """Reproduce Figure 7 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure7(FULL))
    series = {s.name: s for s in result['series']}
    assert all(a >= b for a, b in zip(series['GP1'].y, series['GP'].y))
