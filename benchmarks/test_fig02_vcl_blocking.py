"""Figure 2: MPICH-VCL's non-blocking checkpoint becomes blocking at scale on NPB CG: the fraction of checkpoint time without any message progress grows sharply from the small to the large configuration.

Regenerates the data behind the paper's Figure 2 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-2")
def test_fig02_vcl_blocking(benchmark):
    """Reproduce Figure 2 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure2(FULL))
    gaps = result['series'][0]
    # substantial blocking must be visible at both scales
    assert all(g > 0.2 for g in gaps.y)
    if FULL.name == "full":
        # the growth-with-scale claim needs the paper's 16 → 128 spread; the
        # quick profile's 16 → 32 is too narrow for a monotonic trend
        assert gaps.y[-1] >= gaps.y[0], 'blocking must not decrease with scale'
