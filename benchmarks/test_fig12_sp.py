"""Figure 12: NPB SP: summed checkpoint time of GP is below NORM across the square process counts.

Regenerates the data behind the paper's Figure 12 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-12")
def test_fig12_sp(benchmark):
    """Reproduce Figure 12 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure12(FULL))
    ckpt = {s.name: s for s in result['checkpoint_series']}
    largest = ckpt['NORM'].x[-1]
    assert ckpt['GP'].as_dict()[largest] < ckpt['NORM'].as_dict()[largest]
