"""Figure 1: Aggregate coordination time of one global (LAM/MPI-style) checkpoint of HPL grows with the process count and spikes under unexpected delays.

Regenerates the data behind the paper's Figure 1 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-1")
def test_fig01_coordination_cost(benchmark):
    """Reproduce Figure 1 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure1(FULL))
    series = result['series'][0]
    assert series.y[-1] > series.y[0], 'coordination cost must grow with scale'
