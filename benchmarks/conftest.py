"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at the FULL profile
(the paper's process counts) and prints the resulting rows, so running

    pytest benchmarks/ --benchmark-only

produces the complete reproduction report.  Each experiment is executed once
per benchmark (``rounds=1``) because a single data point already involves
dozens of simulated application runs.

The figure sweeps run through the :mod:`repro.campaign` engine against a
persistent store (``benchmarks/.campaign.sqlite`` by default), so:

* a cold pass can use several worker processes (``REPRO_BENCH_WORKERS``,
  default: all cores),
* a repeated invocation re-runs nothing — every scenario is served from the
  store's ``done`` rows and the full report prints in seconds,
* an interrupted pass resumes where it stopped.

Delete the store file (or point ``REPRO_BENCH_DB`` elsewhere) to force a
fresh run, e.g. after changing simulator internals.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import pytest

from repro.analysis.reporting import format_table


def run_experiment(benchmark, experiment: Callable[[], Dict[str, object]]) -> Dict[str, object]:
    """Run ``experiment`` exactly once under pytest-benchmark and print its tables."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    for key in ("table", "diff_table", "restart_table"):
        if key in result:
            print()
            print(format_table(result[key]))
    return result


@pytest.fixture(scope="session", autouse=True)
def bench_campaign():
    """Install the persistent benchmark campaign behind the figure sweeps."""
    from repro.campaign import Campaign, CampaignStore, set_default_campaign

    path = os.environ.get(
        "REPRO_BENCH_DB", os.path.join(os.path.dirname(__file__), ".campaign.sqlite")
    )
    n_workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0) or (os.cpu_count() or 1)
    campaign = Campaign(CampaignStore(path), n_workers=n_workers)
    set_default_campaign(campaign)
    yield campaign
    counts = campaign.counts()
    print(f"\n[campaign] {path}: {counts}")
    set_default_campaign(None)
    campaign.store.close()


@pytest.fixture(scope="session")
def full_profile():
    """The paper-scale experiment profile."""
    from repro.experiments.config import FULL

    return FULL


def bench_profile():
    """Profile used by the benchmark files.

    Defaults to the paper-scale FULL profile; set ``REPRO_BENCH_PROFILE=quick``
    to regenerate every figure at the reduced test scale (useful on small or
    time-limited machines).
    """
    import os

    from repro.experiments.config import profile_by_name

    return profile_by_name(os.environ.get("REPRO_BENCH_PROFILE", "full"))
