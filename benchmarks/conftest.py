"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at the FULL profile
(the paper's process counts) and prints the resulting rows, so running

    pytest benchmarks/ --benchmark-only

produces the complete reproduction report.  Each experiment is executed once
per benchmark (``rounds=1``) because a single data point already involves
dozens of simulated application runs.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

from repro.analysis.reporting import format_table


def run_experiment(benchmark, experiment: Callable[[], Dict[str, object]]) -> Dict[str, object]:
    """Run ``experiment`` exactly once under pytest-benchmark and print its tables."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
    for key in ("table", "diff_table", "restart_table"):
        if key in result:
            print()
            print(format_table(result[key]))
    return result


@pytest.fixture(scope="session")
def full_profile():
    """The paper-scale experiment profile."""
    from repro.experiments.config import FULL

    return FULL


def bench_profile():
    """Profile used by the benchmark files.

    Defaults to the paper-scale FULL profile; set ``REPRO_BENCH_PROFILE=quick``
    to regenerate every figure at the reduced test scale (useful on small or
    time-limited machines).
    """
    import os

    from repro.experiments.config import profile_by_name

    return profile_by_name(os.environ.get("REPRO_BENCH_PROFILE", "full"))
