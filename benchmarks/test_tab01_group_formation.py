"""Table 1: Trace-assisted group formation for HPL with 32 processes (8x4 grid) yields 4 groups of 8 with round-robin ranks, matching the paper's Table 1 exactly.

Regenerates the data behind the paper's Table 1 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="table-1")
def test_tab01_group_formation(benchmark):
    """Reproduce Table 1 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.table1(FULL))
    groupset = result['groupset']
    expected = {tuple(range(c, 32, 4)) for c in range(4)}
    assert set(groupset.groups) == expected
