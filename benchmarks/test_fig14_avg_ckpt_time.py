"""Figure 14: Average time per checkpoint on remote storage: GP is cheaper than MPICH-VCL at the largest scale (and the gap widens with scale).

Regenerates the data behind the paper's Figure 14 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-14")
def test_fig14_avg_ckpt_time(benchmark):
    """Reproduce Figure 14 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure14(FULL))
    series = {s.name: s for s in result['series']}
    assert series['GP'].y[-1] < series['VCL'].y[-1]
