"""Kernel micro-benchmark: simulated events per wall-second.

Measures the discrete-event kernel + message pipeline on fixed scenarios
(halo2d and HPL at two scales each, plus the contention-free halo2d scenario
whose per-message path is entirely closed-form) and reports

* ``events_per_s`` — calendar events processed per wall second,
* ``equivalent_events_per_s`` — the same wall time credited with the events
  the fast paths provably avoided (``processed + stats.events_elided``); this
  is the apples-to-apples throughput of the full coroutine model's workload,
* ``sim_rate`` — simulated seconds per wall second (scenario-relative speed,
  directly comparable across kernel generations for a fixed scenario),
* the raw ``SimStats`` counter bundle.

Results are *reported through the campaign store*: under pytest, every
measurement is appended to the ``benchmarks`` side table of the harness's
store (the persistent ``benchmarks/.campaign.sqlite`` by default), so the
events/sec history across kernel changes is queryable next to the experiment
results.  The stand-alone CLI records into a store only when ``--db PATH`` is
given (CI's tiny smoke run publishes a JSON artifact instead).

Under pytest no thresholds are asserted — the parametrised tests report
(kernel speed on CI machines is noisy).  The pre-refactor reference numbers
below were measured on the development machine against the seed kernel
(commit ``9fbc996``) with interleaved best-of-6 runs; the fast-path kernel
reproduces the same scenarios bit-identically (see
``tests/test_determinism_parity.py``) at ≈3× the speed.

The stand-alone CLI additionally carries the **regression gate**: with
``--baseline benchmarks/kernel_speed_baseline.json`` each measurement is
compared against the checked-in per-scenario ``events_per_s`` with the
baseline's tolerance band.  While the baseline has ``"enforce": false`` the
comparison is report-only; after one green CI run on a fresh baseline, flip
``enforce`` to true and regressions beyond the band fail the job.  Refresh
the baseline on the reference machine with ``--update-baseline``.

Run stand-alone (no pytest plugins needed — this is what the CI smoke job
uses)::

    PYTHONPATH=src python benchmarks/test_kernel_speed.py --scenario tiny \
        --json kernel-speed.json
    PYTHONPATH=src python benchmarks/test_kernel_speed.py --scenario all \
        --baseline benchmarks/kernel_speed_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

import pytest

from repro.campaign.results import simulator_fingerprint
from repro.cluster.topology import Cluster, GIDEON_300
from repro.experiments.config import QUICK
from repro.experiments.runner import build_family, build_workload
from repro.mpi.runtime import MpiRuntime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

#: benchmark scenarios: halo2d + HPL at two scales, the contention-free
#: halo2d headline scenario, thousand-rank scaling points, and a tiny
#: variant for CI smoke runs
SCENARIOS: Dict[str, Dict[str, object]] = {
    "halo2d-16": {"workload": "halo2d", "n_ranks": 16, "options": None},
    "halo2d-64": {"workload": "halo2d", "n_ranks": 64, "options": None},
    # small messages + compute-dominated spacing: every NIC interaction takes
    # the closed-form path (stats.fastpath_* cover ~all messages)
    "halo2d-cf-64": {"workload": "halo2d", "n_ranks": 64,
                     "options": {"message_bytes": 1024, "iterations": 20}},
    # scaling track: same QUICK-sized halo exchange at 256 and 1024 ranks
    # (one rank per node; the cluster is grown to match)
    "halo2d-256": {"workload": "halo2d", "n_ranks": 256, "options": None},
    "halo2d-1024": {"workload": "halo2d", "n_ranks": 1024, "options": None},
    "hpl-16": {"workload": "hpl", "n_ranks": 16, "options": dict(QUICK.hpl_options)},
    "hpl-32": {"workload": "hpl", "n_ranks": 32, "options": dict(QUICK.hpl_options)},
    "tiny": {"workload": "halo2d", "n_ranks": 8,
             "options": {"iterations": 3, "message_bytes": 4096}},
}

#: scenarios excluded from default pytest/CI runs (nightly/manual only:
#: opt in with RUN_SCALE_BENCHMARKS=1); the CLI always accepts them
SCALE_ONLY = ("halo2d-1024",)

#: seed-kernel reference (dev machine, commit 9fbc996, interleaved best-of-6):
#: wall seconds and calendar events for the same scenarios.  Informational —
#: printed next to current numbers, never asserted.
PRE_REFACTOR_BASELINE: Dict[str, Dict[str, float]] = {
    "halo2d-16": {"wall_s": 0.048, "events": 8513},
    "halo2d-64": {"wall_s": 0.210, "events": 34049},
    "halo2d-cf-64": {"wall_s": 0.420, "events": 67969},
    "hpl-16": {"wall_s": 0.038, "events": 6273},
    "hpl-32": {"wall_s": 0.070, "events": 10913},
}


def measure_kernel_speed(scenario: str, repeat: int = 3) -> Dict[str, object]:
    """Run one benchmark scenario ``repeat`` times and report the best run.

    Uses the NORM protocol family (no trace run, no checkpoint schedule), so
    the measurement covers exactly the kernel + runtime message pipeline.
    """
    spec = SCENARIOS[scenario]
    best: Optional[Dict[str, object]] = None
    for _ in range(repeat):
        workload = build_workload(spec["workload"], spec["n_ranks"], spec["options"])
        cluster_spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, spec["n_ranks"]))
        family = build_family("NORM", spec["n_ranks"], spec["workload"], cluster_spec)
        sim = Simulator()
        cluster = Cluster(sim, cluster_spec)
        runtime = MpiRuntime(sim, cluster, spec["n_ranks"], protocol_family=family,
                             rng=RandomStreams(7))
        runtime.set_memory(workload.memory_map())
        runtime.launch(workload.program_factory())
        start = time.perf_counter()
        app = runtime.run_to_completion(limit_s=1e8)
        wall_s = time.perf_counter() - start
        if best is None or wall_s < best["wall_s"]:
            events = sim.processed_events
            elided = sim.stats.events_elided
            best = {
                "scenario": scenario,
                "workload": spec["workload"],
                "n_ranks": spec["n_ranks"],
                "sim_version": simulator_fingerprint(),
                "wall_s": wall_s,
                "events": events,
                "events_elided": elided,
                "events_per_s": events / wall_s,
                "equivalent_events_per_s": (events + elided) / wall_s,
                "makespan": app.makespan,
                "sim_rate": app.makespan / wall_s,
                "messages": cluster.network.total_messages,
                "messages_per_s": cluster.network.total_messages / wall_s,
                "stats": sim.stats.as_dict(),
            }
    assert best is not None
    baseline = PRE_REFACTOR_BASELINE.get(scenario)
    if baseline is not None:
        best["baseline_wall_s"] = baseline["wall_s"]
        best["baseline_events"] = baseline["events"]
        # same scenario, so the seed kernel's event workload per wall second
        # is the principled cross-kernel events/sec comparison
        best["baseline_events_per_s"] = baseline["events"] / baseline["wall_s"]
        best["speedup_vs_baseline"] = baseline["wall_s"] / best["wall_s"]
    return best


def measure_sampler_overhead(
    scenario: str = "halo2d-64",
    repeat: int = 7,
    sample_bin_s: float = 0.25,
) -> Dict[str, object]:
    """A/B-measure the continuous sampler's wall-time cost on one scenario.

    Runs the scenario ``repeat`` times per variant, strictly interleaved
    (off, on, off, on, ...) so drift affects both variants equally, after one
    unmeasured warm-up pair:

    * **off** — no telemetry attached at all: the kernel's sampler hook is
      present but ``_sampler is None``, so this is the telemetry-off fast
      path every production run takes;
    * **on** — a :class:`~repro.obs.Telemetry` with the state sampler at
      ``sample_bin_s`` attached (trace off, so the delta is the sampler
      alone).

    Reports the median wall time of each variant and their relative
    ``overhead_frac``.  The guard criterion is the one the span tracer
    shipped under: passive observation must stay under 2% median wall-time
    overhead.
    """
    from repro.obs import Telemetry

    spec = SCENARIOS[scenario]

    def run_once(sampled: bool) -> float:
        workload = build_workload(spec["workload"], spec["n_ranks"], spec["options"])
        cluster_spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, spec["n_ranks"]))
        family = build_family("NORM", spec["n_ranks"], spec["workload"], cluster_spec)
        sim = Simulator()
        cluster = Cluster(sim, cluster_spec)
        runtime = MpiRuntime(sim, cluster, spec["n_ranks"], protocol_family=family,
                             rng=RandomStreams(7))
        runtime.set_memory(workload.memory_map())
        runtime.launch(workload.program_factory())
        if sampled:
            runtime.attach_telemetry(
                Telemetry(trace=False, sample_bin_s=sample_bin_s))
        start = time.perf_counter()
        runtime.run_to_completion(limit_s=1e8)
        return time.perf_counter() - start

    run_once(False), run_once(True)  # warm-up pair, discarded
    wall_off: List[float] = []
    wall_on: List[float] = []
    for _ in range(repeat):
        wall_off.append(run_once(False))
        wall_on.append(run_once(True))
    median = lambda xs: sorted(xs)[len(xs) // 2]
    m_off, m_on = median(wall_off), median(wall_on)
    return {
        "scenario": scenario,
        "repeat": repeat,
        "sample_bin_s": sample_bin_s,
        "wall_off_median_s": m_off,
        "wall_on_median_s": m_on,
        "overhead_frac": m_on / m_off - 1.0,
    }


def measure_kernel_footprint(scenario: str) -> Dict[str, object]:
    """Peak-memory track: run one scenario once under ``tracemalloc``.

    Reports the tracemalloc peak of the simulation run (Python-heap bytes
    attributable to the scenario itself: messages, events, contexts) next to
    the process-wide ``ru_maxrss`` high-water mark.  Tracing slows the run
    several-fold, so footprint is measured in a separate pass and never mixed
    into the events/sec numbers.
    """
    import resource
    import tracemalloc

    spec = SCENARIOS[scenario]
    workload = build_workload(spec["workload"], spec["n_ranks"], spec["options"])
    cluster_spec = GIDEON_300.with_nodes(max(GIDEON_300.n_nodes, spec["n_ranks"]))
    family = build_family("NORM", spec["n_ranks"], spec["workload"], cluster_spec)
    sim = Simulator()
    cluster = Cluster(sim, cluster_spec)
    runtime = MpiRuntime(sim, cluster, spec["n_ranks"], protocol_family=family,
                         rng=RandomStreams(7))
    runtime.set_memory(workload.memory_map())
    runtime.launch(workload.program_factory())
    tracemalloc.start()
    try:
        baseline_bytes, _ = tracemalloc.get_traced_memory()
        runtime.run_to_completion(limit_s=1e8)
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    ru_maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "scenario": scenario,
        "n_ranks": spec["n_ranks"],
        "events": sim.processed_events,
        "peak_traced_bytes": peak_bytes - baseline_bytes,
        "peak_traced_mb": round((peak_bytes - baseline_bytes) / 1e6, 2),
        "ru_maxrss_mb": round(ru_maxrss_kb / 1024, 1),
    }


#: default location of the checked-in regression baseline
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "kernel_speed_baseline.json")


def load_baseline(path: str = BASELINE_PATH) -> Dict[str, object]:
    """Read the checked-in regression baseline."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_to_baseline(
    payloads: List[Dict[str, object]], baseline: Dict[str, object]
) -> Tuple[List[str], List[str]]:
    """Compare measurements to the baseline; return (report lines, violations).

    A scenario *regresses* when its measured metric falls below
    ``baseline × (1 − tolerance)``.  Scenarios absent from the baseline are
    reported but never gate.  Violations only fail the run when the baseline
    sets ``"enforce": true`` (the caller decides — this function just sorts
    lines into the two buckets).
    """
    metric = str(baseline.get("metric", "events_per_s"))
    tolerance = float(baseline.get("tolerance", 0.3))
    scenarios = baseline.get("scenarios", {})
    lines: List[str] = []
    violations: List[str] = []
    for payload in payloads:
        if metric not in payload:  # e.g. the sampler-overhead A/B track
            continue
        name = payload["scenario"]
        measured = float(payload[metric])
        ref = scenarios.get(name)
        if ref is None:
            lines.append(f"{name}: {measured:,.0f} {metric} (no baseline entry)")
            continue
        ratio = measured / float(ref)
        line = (f"{name}: {measured:,.0f} vs baseline {float(ref):,.0f} {metric}"
                f" ({ratio:.2f}x, tolerance -{tolerance:.0%})")
        if ratio < 1.0 - tolerance:
            violations.append(line + "  REGRESSED")
        else:
            lines.append(line + "  ok")
    return lines, violations


def update_baseline(payloads: List[Dict[str, object]],
                    path: str = BASELINE_PATH) -> None:
    """Rewrite the baseline's per-scenario numbers from fresh measurements."""
    baseline = load_baseline(path) if os.path.exists(path) else {
        "enforce": False, "tolerance": 0.3, "metric": "events_per_s",
        "scenarios": {},
    }
    metric = str(baseline.get("metric", "events_per_s"))
    for payload in payloads:
        if "overhead_frac" in payload:
            # sampler A/B track: report-only, never part of the enforced gate
            baseline["sampler_overhead"] = {
                "scenario": payload["scenario"],
                "sample_bin_s": payload["sample_bin_s"],
                "overhead_frac": round(float(payload["overhead_frac"]), 4),
            }
            continue
        baseline["scenarios"][payload["scenario"]] = round(float(payload[metric]))
        if "peak_traced_mb" in payload:
            baseline.setdefault("footprint_mb", {})[payload["scenario"]] = {
                "peak_traced_mb": payload["peak_traced_mb"],
                "ru_maxrss_mb": payload["ru_maxrss_mb"],
            }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")


def _record(payload: Dict[str, object]) -> None:
    """Append the measurement to the active campaign store's benchmark table."""
    from repro.campaign.executor import get_default_campaign

    get_default_campaign().store.record_benchmark("kernel_speed", payload)


def _print_report(payload: Dict[str, object]) -> None:
    line = (f"{payload['scenario']}: {payload['events']} events "
            f"(+{payload['events_elided']} elided) in {payload['wall_s']:.3f}s"
            f" -> {payload['events_per_s']:,.0f} ev/s"
            f" ({payload['equivalent_events_per_s']:,.0f} model-equivalent ev/s,"
            f" {payload['messages_per_s']:,.0f} msg/s)")
    if "speedup_vs_baseline" in payload:
        line += (f"  [seed kernel: {payload['baseline_events_per_s']:,.0f} ev/s,"
                 f" speedup {payload['speedup_vs_baseline']:.2f}x]")
    if "peak_traced_mb" in payload:
        line += (f"  [peak {payload['peak_traced_mb']} MB traced,"
                 f" rss high-water {payload['ru_maxrss_mb']} MB]")
    print(line)


_scale_skip = pytest.mark.skipif(
    not os.environ.get("RUN_SCALE_BENCHMARKS"),
    reason="thousand-rank scenario: nightly/manual only (set RUN_SCALE_BENCHMARKS=1)",
)


@pytest.mark.parametrize(
    "scenario",
    [pytest.param(s, marks=_scale_skip) if s in SCALE_ONLY else s
     for s in SCENARIOS if s != "tiny"],
)
def test_kernel_speed(scenario):
    """Measure and record events/sec for one scenario (report-only)."""
    payload = measure_kernel_speed(scenario)
    print()
    _print_report(payload)
    _record(payload)
    assert payload["events"] > 0
    assert payload["events_elided"] > 0  # the fast paths must actually engage


def test_sampler_overhead_guard():
    """The continuous sampler must stay under 2% median wall-time overhead.

    Scheduler noise on a loaded box only ever *inflates* the measured
    overhead, so a failing measurement is retried (up to three attempts)
    and the best observation is what the guard asserts on.
    """
    payload = measure_sampler_overhead()
    for _ in range(2):
        if payload["overhead_frac"] < 0.02:
            break
        retry = measure_sampler_overhead()
        if retry["overhead_frac"] < payload["overhead_frac"]:
            payload = retry
    print()
    print(f"sampler A/B on {payload['scenario']} "
          f"(bin {payload['sample_bin_s']}s, median of {payload['repeat']}): "
          f"off {payload['wall_off_median_s'] * 1000:.1f}ms, "
          f"on {payload['wall_on_median_s'] * 1000:.1f}ms -> "
          f"{payload['overhead_frac']:+.2%} overhead")
    from repro.campaign.executor import get_default_campaign

    get_default_campaign().store.record_benchmark("sampler_overhead", payload)
    assert payload["overhead_frac"] < 0.02


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="all",
                        help="scenario name, 'all' (every non-tiny scenario except "
                             "the nightly-only thousand-rank ones — name those "
                             "explicitly), or 'tiny'")
    parser.add_argument("--repeat", type=int, default=3, help="runs per scenario (best kept)")
    parser.add_argument("--json", default=None, help="write measurements to this JSON file")
    parser.add_argument("--db", default=None,
                        help="also record into this campaign store's benchmark table")
    parser.add_argument("--baseline", default=None,
                        help="compare against this regression-baseline JSON; "
                             "fails when the baseline enforces and a scenario "
                             "regresses beyond its tolerance band")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"rewrite {BASELINE_PATH} from this run's numbers")
    parser.add_argument("--footprint", action="store_true",
                        help="also measure peak memory (tracemalloc + ru_maxrss) "
                             "in a separate instrumented pass per scenario")
    parser.add_argument("--sampler-overhead", action="store_true",
                        help="also run the interleaved sampler-on vs telemetry-off "
                             "A/B and report its median wall-time overhead "
                             "(report-only track in the baseline)")
    args = parser.parse_args(argv)

    if args.scenario == "all":
        names = [s for s in SCENARIOS if s != "tiny" and s not in SCALE_ONLY]
    elif args.scenario in SCENARIOS:
        names = [args.scenario]
    else:
        parser.error(f"unknown scenario {args.scenario!r}; "
                     f"expected one of {sorted(SCENARIOS)} or 'all'")
    payloads = []
    for name in names:
        payload = measure_kernel_speed(name, repeat=args.repeat)
        if args.footprint:
            fp = measure_kernel_footprint(name)
            payload["peak_traced_mb"] = fp["peak_traced_mb"]
            payload["ru_maxrss_mb"] = fp["ru_maxrss_mb"]
        _print_report(payload)
        payloads.append(payload)
    if args.sampler_overhead:
        ab = measure_sampler_overhead()
        print(f"sampler A/B on {ab['scenario']} (bin {ab['sample_bin_s']}s, "
              f"median of {ab['repeat']}): "
              f"off {ab['wall_off_median_s'] * 1000:.1f}ms, "
              f"on {ab['wall_on_median_s'] * 1000:.1f}ms -> "
              f"{ab['overhead_frac']:+.2%} overhead")
        payloads.append(ab)
    if args.db:
        from repro.campaign.store import CampaignStore

        store = CampaignStore(args.db)
        try:
            for payload in payloads:
                store.record_benchmark("kernel_speed", payload)
        finally:
            store.close()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payloads, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(payloads)} measurement(s) to {args.json}")
    if args.update_baseline:
        update_baseline(payloads)
        print(f"updated {BASELINE_PATH}")
    if args.baseline:
        baseline = load_baseline(args.baseline)
        lines, violations = compare_to_baseline(payloads, baseline)
        enforce = bool(baseline.get("enforce", False))
        print(f"\nbaseline comparison ({args.baseline}, "
              f"{'enforcing' if enforce else 'report-only'}):")
        for line in lines + violations:
            print(f"  {line}")
        if violations and enforce:
            print(f"{len(violations)} scenario(s) regressed beyond tolerance")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
