"""Figure 5: HPL execution time with one checkpoint at t=60s: the group-based scheme is at least competitive with the global coordinated checkpoint, and its advantage grows with scale.

Regenerates the data behind the paper's Figure 5 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-5")
def test_fig05_execution_time(benchmark):
    """Reproduce Figure 5 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure5(FULL))
    gp = next(s for s in result['series'] if s.name == 'GP')
    norm = next(s for s in result['series'] if s.name == 'NORM')
    assert gp.y[-1] <= norm.y[-1] * 1.05
