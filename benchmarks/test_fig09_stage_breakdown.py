"""Figure 9: Checkpoint time breakdown: the image dump ('checkpoint' stage) is scale-independent, while NORM's coordination stage grows to dominate at 128 processes and GP keeps it minimal.

Regenerates the data behind the paper's Figure 9 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-9")
def test_fig09_stage_breakdown(benchmark):
    """Reproduce Figure 9 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure9(FULL))
    table = result['table']
    rows = {(r[0], r[1]): dict(zip(table.columns, r)) for r in table.rows}
    scales = sorted({r[0] for r in table.rows})
    small, large = scales[0], scales[-1]
    assert rows[(large, 'NORM')]['coordination'] > rows[(small, 'NORM')]['coordination']
    assert rows[(large, 'GP')]['coordination'] < rows[(large, 'NORM')]['coordination']
