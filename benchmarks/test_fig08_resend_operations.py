"""Figure 8: Number of resend operations during restart: GP1 needs at least as many as GP/GP4.

Regenerates the data behind the paper's Figure 8 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-8")
def test_fig08_resend_operations(benchmark):
    """Reproduce Figure 8 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure8(FULL))
    series = {s.name: s for s in result['series']}
    assert all(a >= b for a, b in zip(series['GP1'].y, series['GP'].y))
