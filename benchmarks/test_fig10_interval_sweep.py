"""Figure 10: Multiple checkpoints at fixed intervals (HPL N=56000, 128 processes): with no checkpoints GP pays the logging overhead, with frequent checkpoints it completes at least as many checkpoints as NORM in competitive time.

Regenerates the data behind the paper's Figure 10 at the paper's scales and
checks the qualitative claim (ordering/trend), not absolute seconds.
"""

import pytest

from repro.experiments import figures
from conftest import bench_profile, run_experiment

FULL = bench_profile()


@pytest.mark.benchmark(group="figure-10")
def test_fig10_interval_sweep(benchmark):
    """Reproduce Figure 10 and verify its qualitative shape."""
    result = run_experiment(benchmark, lambda: figures.figure10(FULL))
    series = {s.name: s for s in result['series']}
    assert series['GP time'].as_dict()[0.0] >= series['NORM time'].as_dict()[0.0] - 1e-6
    shortest = min(x for x in series['GP #CKPT'].x if x > 0)
    assert series['GP #CKPT'].as_dict()[shortest] >= series['NORM #CKPT'].as_dict()[shortest]
